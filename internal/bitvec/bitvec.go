// Package bitvec implements fixed-length bit vectors with word-parallel
// set algebra and counting operations.
//
// A Vector is the row representation used throughout the repository for
// RBAC assignment matrices: bit j of a role's row is 1 iff the role is
// assigned user (or permission) j. All counting primitives the Role Diet
// algorithm relies on — norms |R|, co-occurrences g(i,j), and Hamming
// distances — reduce to popcounts over AND/XOR of packed words, which is
// what makes the Go reproduction competitive with the paper's
// numpy-backed implementation.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	// wordBits is the number of bits per storage word.
	wordBits = 64
	// wordShift is log2(wordBits), used for index arithmetic.
	wordShift = 6
	// wordMask extracts the in-word bit offset from a bit index.
	wordMask = wordBits - 1
)

// Vector is a fixed-length sequence of bits packed into 64-bit words.
// The zero value is an empty vector of length 0; use New to create a
// vector with capacity for a given number of bits.
//
// Methods that combine two vectors (And, Or, Xor, Hamming, ...) require
// both operands to have the same length and panic otherwise: mixing row
// widths is a programming error, not a runtime condition.
type Vector struct {
	words []uint64
	n     int
}

// New returns a Vector holding n bits, all zero.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{
		words: make([]uint64, wordsFor(n)),
		n:     n,
	}
}

// FromBools builds a Vector from a slice of booleans, one bit per element.
func FromBools(bs []bool) *Vector {
	v := New(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i)
		}
	}
	return v
}

// FromIndices builds a Vector of length n with the given bit positions set.
// Indices outside [0, n) cause a panic.
func FromIndices(n int, indices []int) *Vector {
	v := New(n)
	for _, i := range indices {
		v.Set(i)
	}
	return v
}

// wordsFor returns the number of 64-bit words needed to hold n bits.
func wordsFor(n int) int {
	return (n + wordBits - 1) >> wordShift
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// checkIndex panics if i is out of range.
func (v *Vector) checkIndex(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.checkIndex(i)
	v.words[i>>wordShift] |= 1 << (uint(i) & wordMask)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.checkIndex(i)
	v.words[i>>wordShift] &^= 1 << (uint(i) & wordMask)
}

// SetTo sets bit i to the given value.
func (v *Vector) SetTo(i int, value bool) {
	if value {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.checkIndex(i)
	return v.words[i>>wordShift]&(1<<(uint(i)&wordMask)) != 0
}

// Count returns the number of set bits (the vector's norm |R| in the
// paper's notation).
func (v *Vector) Count() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Any reports whether at least one bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// IsZero reports whether no bit is set.
func (v *Vector) IsZero() bool { return !v.Any() }

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	out := &Vector{
		words: make([]uint64, len(v.words)),
		n:     v.n,
	}
	copy(out.words, v.words)
	return out
}

// Reset clears every bit without reallocating.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// checkSameLen panics unless the two vectors have equal length.
func (v *Vector) checkSameLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, o.n))
	}
}

// Equal reports whether the two vectors have identical length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// And sets v to the bitwise AND of v and o.
func (v *Vector) And(o *Vector) {
	v.checkSameLen(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Or sets v to the bitwise OR of v and o.
func (v *Vector) Or(o *Vector) {
	v.checkSameLen(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// Xor sets v to the bitwise XOR of v and o.
func (v *Vector) Xor(o *Vector) {
	v.checkSameLen(o)
	for i := range v.words {
		v.words[i] ^= o.words[i]
	}
}

// AndNot sets v to the bits of v that are not in o (set difference).
func (v *Vector) AndNot(o *Vector) {
	v.checkSameLen(o)
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
}

// IntersectionCount returns |v AND o| without allocating: the number of
// positions set in both vectors. This is exactly the co-occurrence count
// g(i, j) from the paper when v and o are two role rows.
func (v *Vector) IntersectionCount(o *Vector) int {
	v.checkSameLen(o)
	total := 0
	for i, w := range v.words {
		total += bits.OnesCount64(w & o.words[i])
	}
	return total
}

// UnionCount returns |v OR o| without allocating.
func (v *Vector) UnionCount(o *Vector) int {
	v.checkSameLen(o)
	total := 0
	for i, w := range v.words {
		total += bits.OnesCount64(w | o.words[i])
	}
	return total
}

// Hamming returns the Hamming distance |v XOR o| without allocating: the
// number of positions where the two vectors differ. For binary assignment
// rows this equals the number of distinct users (or permissions) between
// two roles, the similarity measure used by inefficiency class 5.
func (v *Vector) Hamming(o *Vector) int {
	v.checkSameLen(o)
	total := 0
	for i, w := range v.words {
		total += bits.OnesCount64(w ^ o.words[i])
	}
	return total
}

// HammingBatch computes dst[i] = Hamming(rows[i], q) for every row,
// with the word loop unrolled 4-way so the XOR+popcount pipeline stays
// full. This is the kernel behind the parallel DBSCAN region queries:
// one call evaluates a whole block of candidate distances against a
// query row without per-pair call overhead or allocation (dst is
// caller-provided scratch).
//
// It panics unless len(dst) >= len(rows) and every row matches q's
// length, consistent with the pairwise methods' mixing-widths-is-a-
// programming-error contract.
func HammingBatch(dst []int, rows []*Vector, q *Vector) {
	if len(dst) < len(rows) {
		panic(fmt.Sprintf("bitvec: HammingBatch dst length %d < %d rows", len(dst), len(rows)))
	}
	qw := q.words
	nw := len(qw)
	for i, r := range rows {
		q.checkSameLen(r)
		rw := r.words[:nw]
		total := 0
		j := 0
		for ; j+4 <= nw; j += 4 {
			total += bits.OnesCount64(rw[j]^qw[j]) +
				bits.OnesCount64(rw[j+1]^qw[j+1]) +
				bits.OnesCount64(rw[j+2]^qw[j+2]) +
				bits.OnesCount64(rw[j+3]^qw[j+3])
		}
		for ; j < nw; j++ {
			total += bits.OnesCount64(rw[j] ^ qw[j])
		}
		dst[i] = total
	}
}

// HammingAtMost reports whether Hamming(v, o) <= k, short-circuiting as
// soon as the running count exceeds k. For the similar-roles detector the
// threshold k is small (typically 1), so most comparisons abort within a
// word or two.
func (v *Vector) HammingAtMost(o *Vector, k int) bool {
	v.checkSameLen(o)
	if k < 0 {
		return false
	}
	total := 0
	for i, w := range v.words {
		total += bits.OnesCount64(w ^ o.words[i])
		if total > k {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every set bit of v is also set in o.
func (v *Vector) IsSubsetOf(o *Vector) bool {
	v.checkSameLen(o)
	for i, w := range v.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Indices returns the positions of all set bits in ascending order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	for wi, w := range v.words {
		base := wi << wordShift
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for each set bit position in ascending order. It stops
// early if fn returns false.
func (v *Vector) ForEach(fn func(i int) bool) {
	for wi, w := range v.words {
		base := wi << wordShift
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}

// NextSet returns the position of the first set bit at or after i, and
// whether such a bit exists.
func (v *Vector) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return 0, false
	}
	wi := i >> wordShift
	w := v.words[wi] >> (uint(i) & wordMask)
	if w != 0 {
		return i + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi<<wordShift + bits.TrailingZeros64(v.words[wi]), true
		}
	}
	return 0, false
}

// Hash returns a 64-bit FNV-1a style hash over the vector's words.
// Vectors with equal bits always hash equally; it is used by the Role
// Diet exact-group fast path to pre-bucket identical rows.
func (v *Vector) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range v.words {
		for s := 0; s < wordBits; s += 8 {
			h ^= (w >> uint(s)) & 0xff
			h *= prime64
		}
	}
	// Mix the length so vectors of different widths never collide by
	// construction, even when their word slices coincide.
	h ^= uint64(v.n)
	h *= prime64
	return h
}

// Words exposes the underlying packed words. The returned slice aliases
// the vector's storage; callers must treat it as read-only. Used by the
// matrix package to serialise without re-walking bits.
func (v *Vector) Words() []uint64 { return v.words }

// Floats expands the vector into a []float64 of 0.0/1.0 values. The
// clustering baselines (DBSCAN with scikit-learn semantics, HNSW) operate
// on float vectors exactly as the paper's Python implementation does.
func (v *Vector) Floats() []float64 {
	out := make([]float64, v.n)
	v.ForEach(func(i int) bool {
		out[i] = 1.0
		return true
	})
	return out
}

// String renders the vector as a compact 0/1 string, e.g. "01101".
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a Vector from a 0/1 string as produced by String.
func Parse(s string) (*Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			v.Set(i)
		case '0':
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q at position %d", s[i], i)
		}
	}
	return v, nil
}
