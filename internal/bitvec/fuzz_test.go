package bitvec

import "testing"

// FuzzParse exercises the 0/1 string parser: valid inputs must round
// trip exactly, invalid ones must be rejected without panicking.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("1")
	f.Add("0101101")
	f.Add("02")
	f.Add("abc")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if v.Len() != len(s) {
			t.Fatalf("Len = %d for input of %d bytes", v.Len(), len(s))
		}
		if v.String() != s {
			t.Fatalf("round trip %q -> %q", s, v.String())
		}
	})
}

// FuzzHammingBatchParity checks the unrolled batch kernel against the
// scalar Hamming loop. Widths are derived from the fuzzed byte count
// plus a fuzzed trim, so they land on word boundaries, mid-word
// offsets, and the 4-way unroll remainder (1-3 trailing words) alike.
func FuzzHammingBatchParity(f *testing.F) {
	f.Add([]byte{0xaa, 0x55, 0x00, 0xff}, []byte{0x0f}, uint8(3))
	f.Add([]byte{0x01}, []byte{0x80}, uint8(0))
	f.Add(make([]byte, 40), []byte{0xff, 0xff, 0xff}, uint8(7))
	f.Fuzz(func(t *testing.T, qb, rb []byte, trim uint8) {
		if len(qb) == 0 || len(qb) > 80 {
			return
		}
		// Width deliberately not a multiple of 64 for most trims.
		width := len(qb)*8 - int(trim%8)
		if width <= 0 {
			return
		}
		fill := func(bs []byte) *Vector {
			v := New(width)
			for i := 0; i < width; i++ {
				if bs[(i/8)%len(bs)]&(1<<(i%8)) != 0 {
					v.Set(i)
				}
			}
			return v
		}
		if len(rb) == 0 {
			rb = []byte{0}
		}
		q := fill(qb)
		rows := []*Vector{fill(rb), fill(qb), New(width)}
		dst := make([]int, len(rows))
		HammingBatch(dst, rows, q)
		for i, r := range rows {
			if want := q.Hamming(r); dst[i] != want {
				t.Fatalf("width %d row %d: HammingBatch = %d, scalar Hamming = %d", width, i, dst[i], want)
			}
		}
	})
}

// FuzzHammingIdentity checks the core identity on arbitrary bit
// patterns reconstructed from fuzzed bytes.
func FuzzHammingIdentity(f *testing.F) {
	f.Add([]byte{0x00}, []byte{0xff})
	f.Add([]byte{0xaa, 0x55}, []byte{0x55, 0xaa})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 || n > 64 {
			return
		}
		va, vb := New(n*8), New(n*8)
		for i := 0; i < n; i++ {
			for bit := 0; bit < 8; bit++ {
				if a[i]&(1<<bit) != 0 {
					va.Set(i*8 + bit)
				}
				if b[i]&(1<<bit) != 0 {
					vb.Set(i*8 + bit)
				}
			}
		}
		if va.Hamming(vb) != va.Count()+vb.Count()-2*va.IntersectionCount(vb) {
			t.Fatal("Hamming identity violated")
		}
		if va.Hamming(vb) != vb.Hamming(va) {
			t.Fatal("Hamming asymmetric")
		}
	})
}
