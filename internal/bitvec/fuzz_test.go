package bitvec

import "testing"

// FuzzParse exercises the 0/1 string parser: valid inputs must round
// trip exactly, invalid ones must be rejected without panicking.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("1")
	f.Add("0101101")
	f.Add("02")
	f.Add("abc")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if v.Len() != len(s) {
			t.Fatalf("Len = %d for input of %d bytes", v.Len(), len(s))
		}
		if v.String() != s {
			t.Fatalf("round trip %q -> %q", s, v.String())
		}
	})
}

// FuzzHammingIdentity checks the core identity on arbitrary bit
// patterns reconstructed from fuzzed bytes.
func FuzzHammingIdentity(f *testing.F) {
	f.Add([]byte{0x00}, []byte{0xff})
	f.Add([]byte{0xaa, 0x55}, []byte{0x55, 0xaa})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 || n > 64 {
			return
		}
		va, vb := New(n*8), New(n*8)
		for i := 0; i < n; i++ {
			for bit := 0; bit < 8; bit++ {
				if a[i]&(1<<bit) != 0 {
					va.Set(i*8 + bit)
				}
				if b[i]&(1<<bit) != 0 {
					vb.Set(i*8 + bit)
				}
			}
		}
		if va.Hamming(vb) != va.Count()+vb.Count()-2*va.IntersectionCount(vb) {
			t.Fatal("Hamming identity violated")
		}
		if va.Hamming(vb) != vb.Hamming(va) {
			t.Fatal("Hamming asymmetric")
		}
	})
}
