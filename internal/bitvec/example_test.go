package bitvec_test

import (
	"fmt"

	"repro/internal/bitvec"
)

// Example shows the counting primitives the Role Diet algorithm builds
// on: norms, co-occurrences and Hamming distances over packed rows.
func Example() {
	r1 := bitvec.FromIndices(6, []int{0, 1, 2}) // role 1's users
	r2 := bitvec.FromIndices(6, []int{1, 2, 3}) // role 2's users

	fmt.Println("|R1| =", r1.Count())
	fmt.Println("g(R1,R2) =", r1.IntersectionCount(r2))
	fmt.Println("Hamming =", r1.Hamming(r2))
	// The paper's identity: Hamming = |R1| + |R2| - 2 g.
	fmt.Println("identity holds:",
		r1.Hamming(r2) == r1.Count()+r2.Count()-2*r1.IntersectionCount(r2))
	// Output:
	// |R1| = 3
	// g(R1,R2) = 2
	// Hamming = 2
	// identity holds: true
}
