package auditor

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rbac"
)

func newTestAuditor(t *testing.T, cfg Config) (*Auditor, chan *core.Report) {
	t.Helper()
	reports := make(chan *core.Report, 16)
	cfg.OnReport = func(r *core.Report) { reports <- r }
	if cfg.Source == nil {
		cfg.Source = rbac.Figure1
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Shutdown)
	return a, reports
}

func waitReport(t *testing.T, ch chan *core.Report) *core.Report {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a report")
		return nil
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := New(Config{Source: rbac.Figure1, Interval: -time.Second}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := New(Config{Source: rbac.Figure1,
		Options: core.Options{SimilarThreshold: -1}}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestManualTrigger(t *testing.T) {
	a, reports := newTestAuditor(t, Config{})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if a.Latest() != nil {
		t.Fatal("report before any run")
	}
	a.TriggerNow()
	rep := waitReport(t, reports)
	if len(rep.SameUserGroups) != 1 {
		t.Fatalf("report = %+v", rep.SameUserGroups)
	}
	if a.Latest() == nil || a.Runs() < 1 {
		t.Fatalf("latest/runs not updated: runs=%d", a.Runs())
	}
	if a.LastError() != nil {
		t.Fatalf("LastError = %v", a.LastError())
	}
}

func TestIntervalRuns(t *testing.T) {
	a, reports := newTestAuditor(t, Config{Interval: 5 * time.Millisecond})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	waitReport(t, reports)
	waitReport(t, reports)
	if a.Runs() < 2 {
		t.Fatalf("runs = %d, want >= 2", a.Runs())
	}
}

func TestSparseMode(t *testing.T) {
	a, reports := newTestAuditor(t, Config{Sparse: true})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	a.TriggerNow()
	rep := waitReport(t, reports)
	if rep.Method != "rolediet" {
		t.Fatalf("method = %q", rep.Method)
	}
}

func TestErrorPath(t *testing.T) {
	errs := make(chan error, 1)
	a, err := New(Config{
		Source:  rbac.Figure1,
		Sparse:  true,
		Options: core.Options{Method: core.MethodDBSCAN}, // sparse rejects dbscan
		OnError: func(e error) { errs <- e },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Shutdown)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	a.TriggerNow()
	select {
	case e := <-errs:
		if e == nil {
			t.Fatal("nil error delivered")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for error")
	}
	if a.LastError() == nil {
		t.Fatal("LastError not set")
	}
	if a.Latest() != nil {
		t.Fatal("failed run produced a report")
	}
}

func TestStartTwice(t *testing.T) {
	a, _ := newTestAuditor(t, Config{})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestShutdownIdempotentAndWithoutStart(t *testing.T) {
	a, err := New(Config{Source: rbac.Figure1})
	if err != nil {
		t.Fatal(err)
	}
	a.Shutdown() // never started
	a.Shutdown() // again
	if err := a.Start(); err == nil {
		t.Fatal("start after shutdown accepted")
	}

	b, _ := newTestAuditor(t, Config{})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	b.Shutdown()
	b.Shutdown()
	b.TriggerNow() // no-op after shutdown, must not panic or block
}
