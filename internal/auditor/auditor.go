// Package auditor runs the detection framework on a schedule — the
// paper's operating model ("the task of cleaning the RBAC database is
// expected to run periodically") as a managed background worker.
//
// The worker owns exactly one goroutine with an explicit lifecycle:
// created stopped, started on request, shut down deterministically
// (Shutdown signals the goroutine and waits for it to exit). Reports
// are delivered through a callback and retained for polling via
// Latest.
package auditor

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rbac"
)

// Config wires an Auditor.
type Config struct {
	// Source supplies the dataset snapshot for each run. It is called
	// once per audit from the worker goroutine; callers that mutate
	// their dataset concurrently should return a clone or otherwise
	// synchronise.
	Source func() *rbac.Dataset
	// Interval between scheduled audits; 0 disables the timer, leaving
	// only manual TriggerNow kicks.
	Interval time.Duration
	// Options configure each analysis run.
	Options core.Options
	// Sparse selects core.AnalyzeSparse (Role Diet only) instead of the
	// dense pipeline.
	Sparse bool
	// OnReport, when set, observes every completed audit from the
	// worker goroutine.
	OnReport func(*core.Report)
	// OnError, when set, observes audit failures; without it failures
	// are retained silently (see LastError).
	OnError func(error)
}

// Auditor periodically audits an RBAC dataset.
type Auditor struct {
	cfg Config

	mu      sync.Mutex
	latest  *core.Report
	lastErr error
	runs    int

	trigger chan struct{}
	stop    chan struct{}
	done    chan struct{}
	started bool
	stopped bool
}

// New validates the configuration and returns a stopped auditor.
func New(cfg Config) (*Auditor, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("auditor: nil Source")
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("auditor: negative interval %v", cfg.Interval)
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	return &Auditor{
		cfg:     cfg,
		trigger: make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the worker goroutine. Starting twice or after
// Shutdown is an error.
func (a *Auditor) Start() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.started {
		return fmt.Errorf("auditor: already started")
	}
	if a.stopped {
		return fmt.Errorf("auditor: already shut down")
	}
	a.started = true
	go a.loop()
	return nil
}

// loop is the worker: it audits on the interval tick and on manual
// triggers, and exits when Shutdown closes stop.
func (a *Auditor) loop() {
	defer close(a.done)
	var tick <-chan time.Time
	if a.cfg.Interval > 0 {
		ticker := time.NewTicker(a.cfg.Interval)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-a.stop:
			return
		case <-tick:
			a.runOnce()
		case <-a.trigger:
			a.runOnce()
		}
	}
}

// runOnce performs one audit.
func (a *Auditor) runOnce() {
	ds := a.cfg.Source()
	var (
		rep *core.Report
		err error
	)
	if a.cfg.Sparse {
		rep, err = core.AnalyzeSparse(ds, a.cfg.Options)
	} else {
		rep, err = core.Analyze(ds, a.cfg.Options)
	}

	a.mu.Lock()
	a.runs++
	if err != nil {
		a.lastErr = err
	} else {
		a.latest = rep
		a.lastErr = nil
	}
	a.mu.Unlock()

	if err != nil {
		if a.cfg.OnError != nil {
			a.cfg.OnError(err)
		}
		return
	}
	if a.cfg.OnReport != nil {
		a.cfg.OnReport(rep)
	}
}

// TriggerNow requests an immediate audit. If one is already queued the
// call coalesces with it. Triggering a stopped auditor is a no-op.
func (a *Auditor) TriggerNow() {
	select {
	case a.trigger <- struct{}{}:
	default:
	}
}

// Latest returns the most recent successful report (nil before the
// first success).
func (a *Auditor) Latest() *core.Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.latest
}

// LastError returns the most recent run's error, or nil if it
// succeeded.
func (a *Auditor) LastError() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastErr
}

// Runs returns the number of completed audit attempts.
func (a *Auditor) Runs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runs
}

// Shutdown stops the worker and waits for it to exit. It is safe to
// call multiple times; calls after the first return immediately. A
// never-started auditor shuts down trivially.
func (a *Auditor) Shutdown() {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		<-a.done
		return
	}
	a.stopped = true
	started := a.started
	a.mu.Unlock()

	close(a.stop)
	if !started {
		close(a.done)
		return
	}
	<-a.done
}
