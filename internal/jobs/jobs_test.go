package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitStatus polls a job until it reaches want or the deadline lapses.
func waitStatus(t *testing.T, j *Job, want Status) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := j.Snapshot()
		if s.Status == want {
			return s
		}
		if s.Status.Terminal() && want != s.Status {
			t.Fatalf("job reached terminal status %s, want %s (error %q)", s.Status, want, s.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never reached status %s (last %+v)", want, j.Snapshot())
	return Snapshot{}
}

func TestJobRunsToCompletion(t *testing.T) {
	m := NewManager(Options{Workers: 2})
	defer m.Close()

	j, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		progress("half", 0.5)
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitStatus(t, j, StatusDone)
	if s.Progress.Fraction != 1 || s.Progress.Stage != "done" {
		t.Fatalf("final progress = %+v, want done/1", s.Progress)
	}
	if s.StartedAt == nil || s.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", s)
	}
	result, jerr, finished := j.Result()
	if !finished || jerr != nil || result != 42 {
		t.Fatalf("Result() = %v, %v, %v", result, jerr, finished)
	}
	got, ok := m.Get(j.ID())
	if !ok || got != j {
		t.Fatal("Get did not return the live job")
	}
}

func TestJobProgressMonotonic(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	var mu sync.Mutex
	var seen []float64
	record := func(j *Job) {
		mu.Lock()
		seen = append(seen, j.Snapshot().Progress.Fraction)
		mu.Unlock()
	}

	j, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		// Deliberately misbehaving task: regressions and overshoot must
		// be clamped by the store.
		progress("a", 0.3)
		progress("b", 0.1)
		progress("c", 2.0)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			record(j)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	waitStatus(t, j, StatusDone)
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("progress regressed: %v -> %v", seen[i-1], seen[i])
		}
	}
}

func TestJobFailure(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	boom := errors.New("boom")
	j, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitStatus(t, j, StatusFailed)
	if s.Error != "boom" {
		t.Fatalf("error = %q", s.Error)
	}
	if _, jerr, finished := j.Result(); !finished || !errors.Is(jerr, boom) {
		t.Fatalf("Result error = %v, %v", jerr, finished)
	}
}

func TestJobPanicBecomesFailure(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	j, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		panic("poisoned dataset")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusFailed)

	// The worker survived the panic and keeps serving.
	j2, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j2, StatusDone)
}

func TestCancelRunningJobFreesWorker(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	started := make(chan struct{})
	j, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusCanceled)

	// The single worker slot must be reusable after the cancellation.
	j2, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j2, StatusDone)

	if err := m.Cancel(j.ID()); !errors.Is(err, ErrFinished) {
		t.Fatalf("second cancel = %v, want ErrFinished", err)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 4})
	defer m.Close()

	release := make(chan struct{})
	blocker, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocker, StatusRunning)

	ran := make(chan struct{})
	queued, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		close(ran)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, queued, StatusCanceled)
	close(release)
	waitStatus(t, blocker, StatusDone)
	select {
	case <-ran:
		t.Fatal("cancelled queued job still ran")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSubmitQueueFull(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 1})
	defer m.Close()

	release := make(chan struct{})
	block := func(ctx context.Context, progress func(string, float64)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	running, err := m.Submit("analyze", block)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, running, StatusRunning)
	if _, err := m.Submit("analyze", block); err != nil {
		t.Fatalf("queued submit failed: %v", err)
	}
	if _, err := m.Submit("analyze", block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit = %v, want ErrQueueFull", err)
	}
	close(release)
}

func TestResultTTLExpiry(t *testing.T) {
	m := NewManager(Options{Workers: 1, ResultTTL: 30 * time.Millisecond})
	defer m.Close()

	j, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		return "r", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusDone)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Get(j.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.Cancel(j.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel after expiry = %v, want ErrNotFound", err)
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 8})

	started := make(chan struct{})
	running, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	m.Close()
	if s := running.Snapshot().Status; s != StatusCanceled {
		t.Fatalf("running job after Close = %s", s)
	}
	if s := queued.Snapshot().Status; s != StatusCanceled {
		t.Fatalf("queued job after Close = %s", s)
	}
	if _, err := m.Submit("analyze", func(ctx context.Context, progress func(string, float64)) (any, error) {
		return nil, nil
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close = %v, want ErrClosed", err)
	}
}

func TestConcurrentSubmitAndPoll(t *testing.T) {
	m := NewManager(Options{Workers: 4, QueueDepth: 256})
	defer m.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := m.Submit(fmt.Sprintf("kind-%d", i%3),
				func(ctx context.Context, progress func(string, float64)) (any, error) {
					progress("work", 0.5)
					return i, nil
				})
			if err != nil {
				errs <- err
				return
			}
			deadline := time.Now().Add(10 * time.Second)
			for {
				if s := j.Snapshot(); s.Status.Terminal() {
					if s.Status != StatusDone {
						errs <- fmt.Errorf("job %d: %s (%s)", i, s.Status, s.Error)
					}
					return
				}
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("job %d: timed out", i)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
