// Package jobs runs long analyses asynchronously: a bounded worker
// pool drains a bounded submission queue, each job reports monotonic
// (stage, fraction) progress while it runs, and finished results are
// kept in an in-memory store until a TTL expires them.
//
// The package is deliberately engine-agnostic: a job is any
// func(ctx, progress) (result, error). The HTTP layer wraps the
// detection engine's entry points into such tasks and exposes the
// lifecycle as /v1/jobs; nothing here imports core.
//
// Lifecycle:
//
//	Submit -> queued -> running -> done | failed | canceled
//
// Cancel works in every non-terminal state: a queued job is retired
// without ever occupying a worker, a running job has its context
// cancelled and the engine's strided cancellation polling returns the
// worker within a bounded amount of work. Terminal jobs stay readable
// until ResultTTL after they finished, then the janitor (and lazy
// checks on access) garbage-collects them.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/ttl"
)

// Status is a job's lifecycle state.
type Status string

// The lifecycle states. StatusDone, StatusFailed and StatusCanceled
// are terminal.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Progress is a job's last reported position.
type Progress struct {
	// Stage names the phase the job is in (engine stage names, plus
	// "queued" before a worker picks the job up).
	Stage string `json:"stage"`
	// Fraction is overall completion in [0, 1], non-decreasing over the
	// job's lifetime; 1 exactly when the job is done.
	Fraction float64 `json:"fraction"`
}

// Task is the unit of asynchronous work. It must honour ctx
// cancellation and may call progress (possibly concurrently with
// status reads) to report advancement; progress is never nil.
type Task func(ctx context.Context, progress func(stage string, fraction float64)) (any, error)

// Snapshot is an immutable, JSON-ready view of a job.
type Snapshot struct {
	ID         string     `json:"id"`
	Kind       string     `json:"kind"`
	Status     Status     `json:"status"`
	Progress   Progress   `json:"progress"`
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"createdAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
}

// Sentinel errors returned by Manager methods.
var (
	// ErrQueueFull means the submission queue is at capacity; callers
	// should shed the request (the HTTP layer maps it to 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrNotFound means no live job has the given id (unknown, or
	// already expired and collected).
	ErrNotFound = errors.New("jobs: not found")
	// ErrFinished means the job already reached a terminal state, so
	// cancellation has nothing to do.
	ErrFinished = errors.New("jobs: already finished")
	// ErrClosed means the manager has been shut down.
	ErrClosed = errors.New("jobs: manager closed")
)

// Options configures a Manager.
type Options struct {
	// Workers is the worker-pool size; defaults to GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; Submit beyond it
	// returns ErrQueueFull. Defaults to 64.
	QueueDepth int
	// ResultTTL is how long a terminal job (result or error included)
	// stays readable after finishing. Defaults to 15 minutes.
	ResultTTL time.Duration
	// BaseContext is the root every job context derives from;
	// cancelling it (daemon drain) cancels all queued and running jobs.
	// Defaults to context.Background().
	BaseContext context.Context
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.ResultTTL <= 0 {
		o.ResultTTL = 15 * time.Minute
	}
	if o.BaseContext == nil {
		o.BaseContext = context.Background()
	}
	return o
}

// Job is one asynchronous run. All state access goes through the
// mutex; Snapshot and Result give callers consistent views.
type Job struct {
	id     string
	kind   string
	task   Task
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	status   Status
	progress Progress
	result   any
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Snapshot returns the job's current state as an immutable view.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:        j.id,
		Kind:      j.kind,
		Status:    j.status,
		Progress:  j.progress,
		CreatedAt: j.created,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}

// Result returns the job's outcome once terminal: (result, nil) for a
// done job, (nil, err) for a failed or canceled one. Before that it
// returns (nil, nil) with finished == false.
func (j *Job) Result() (result any, err error, finished bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.status.Terminal() {
		return nil, nil, false
	}
	return j.result, j.err, true
}

// setProgress records an update, clamped to [0, 1] and kept monotonic:
// a fraction below the last reported one is lifted to it, so observers
// polling concurrently with the engine never see progress move
// backwards even if stage spans overlap at their boundaries.
func (j *Job) setProgress(stage string, fraction float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusRunning {
		return
	}
	if fraction < j.progress.Fraction {
		fraction = j.progress.Fraction
	}
	if fraction > 1 {
		fraction = 1
	}
	j.progress = Progress{Stage: stage, Fraction: fraction}
}

// markRunning transitions queued -> running; it fails when the job was
// cancelled while waiting, telling the worker to skip it.
func (j *Job) markRunning(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = now
	j.progress = Progress{Stage: "running", Fraction: 0}
	return true
}

// finish records the task outcome. Cancellation (the job's context
// ended) maps to StatusCanceled, any other error to StatusFailed.
func (j *Job) finish(result any, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.finished = now
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = result
		j.progress = Progress{Stage: "done", Fraction: 1}
	case errors.Is(err, context.Canceled):
		j.status = StatusCanceled
		j.err = err
	default:
		j.status = StatusFailed
		j.err = err
	}
}

// cancelQueued retires a job that never ran.
func (j *Job) cancelQueued(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusCanceled
	j.err = context.Canceled
	j.finished = now
	return true
}

// expired reports whether the job finished longer than maxAge ago. The
// lazy check in Get makes an expired job unreachable immediately; the
// shared sweeper only bounds memory for abandoned ids.
func (j *Job) expired(now time.Time, maxAge time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Terminal() && ttl.Expired(j.finished, now, maxAge)
}

// Err returns the job's error (nil while queued/running or when done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Manager owns the worker pool, the queue, and the job store.
type Manager struct {
	opts    Options
	base    context.Context
	cancel  context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup
	sweeper *ttl.Sweeper

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool
}

// NewManager starts the worker pool and the TTL janitor.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	base, cancel := context.WithCancel(opts.BaseContext)
	m := &Manager{
		opts:   opts,
		base:   base,
		cancel: cancel,
		queue:  make(chan *Job, opts.QueueDepth),
		jobs:   make(map[string]*Job),
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	// Lazy expiry in Get covers polled jobs; the sweep bounds memory
	// for abandoned ones.
	m.sweeper = ttl.NewSweeper(base, ttl.Interval(opts.ResultTTL), m.sweep)
	return m
}

// Submit enqueues a task. It returns ErrQueueFull when the queue is at
// capacity — backpressure the caller must surface, not absorb — and
// ErrClosed after Close.
func (m *Manager) Submit(kind string, task Task) (*Job, error) {
	if task == nil {
		return nil, fmt.Errorf("jobs: nil task")
	}
	ctx, cancel := context.WithCancel(m.base)
	j := &Job{
		id:       newID(),
		kind:     kind,
		task:     task,
		ctx:      ctx,
		cancel:   cancel,
		status:   StatusQueued,
		progress: Progress{Stage: "queued", Fraction: 0},
		created:  time.Now(),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	m.jobs[j.id] = j
	m.mu.Unlock()

	select {
	case m.queue <- j:
		return j, nil
	default:
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
}

// Get returns a live job by id. Jobs whose TTL has lapsed are
// collected on access and reported as absent.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	if j.expired(time.Now(), m.opts.ResultTTL) {
		m.mu.Lock()
		delete(m.jobs, id)
		m.mu.Unlock()
		return nil, false
	}
	return j, true
}

// Cancel aborts a job: queued jobs are retired immediately, running
// jobs have their context cancelled (the worker frees up as soon as
// the engine's cancellation polling observes it). Returns ErrNotFound
// for unknown/expired ids and ErrFinished for terminal jobs.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	if j.cancelQueued(time.Now()) {
		j.cancel()
		return nil
	}
	j.mu.Lock()
	terminal := j.status.Terminal()
	j.mu.Unlock()
	if terminal {
		return ErrFinished
	}
	j.cancel()
	return nil
}

// Len reports how many jobs the store currently holds (all states).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// List snapshots every live job (queued, running, and terminal jobs
// still inside their TTL), oldest first, ties broken by id so the
// order is stable across calls.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	live := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		live = append(live, j)
	}
	m.mu.Unlock()
	now := time.Now()
	out := make([]Snapshot, 0, len(live))
	for _, j := range live {
		if j.expired(now, m.opts.ResultTTL) {
			continue
		}
		out = append(out, j.Snapshot())
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.Before(out[k].CreatedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Close stops accepting submissions, cancels every queued and running
// job, and waits for the workers and janitor to exit.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		m.sweeper.Stop()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
	m.sweeper.Stop()
}

// worker drains the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.base.Done():
			// Drain what's already queued so those jobs terminate as
			// canceled instead of staying queued forever.
			for {
				select {
				case j := <-m.queue:
					j.cancelQueued(time.Now())
				default:
					return
				}
			}
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob executes one job, converting panics into failures so a
// poisoned dataset cannot take a worker (or the process) down.
func (m *Manager) runJob(j *Job) {
	if !j.markRunning(time.Now()) {
		j.cancel() // cancelled while queued; release the context
		return
	}
	defer j.cancel()
	defer func() {
		if v := recover(); v != nil {
			j.finish(nil, fmt.Errorf("jobs: task panic: %v", v), time.Now())
		}
	}()
	result, err := j.task(j.ctx, j.setProgress)
	// A task that swallowed the cancellation still terminates as
	// canceled, keeping status consistent with the context.
	if err == nil && j.ctx.Err() != nil {
		err = j.ctx.Err()
	}
	j.finish(result, err, time.Now())
}

// sweep collects expired jobs; it is the ttl.Sweeper's callback.
func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	for id, j := range m.jobs {
		if j.expired(now, m.opts.ResultTTL) {
			delete(m.jobs, id)
		}
	}
	m.mu.Unlock()
}

// newID returns a 96-bit random hex id.
func newID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}
