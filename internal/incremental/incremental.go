// Package incremental maintains the class-4 inefficiency ("roles
// sharing the same users/permissions") under live mutations.
//
// The paper's framework is batch: it assumes the cleanup "is expected to
// run periodically". This package is the incremental counterpart for
// deployments that want the duplicate-role index to stay current as
// assignments churn: each edge mutation updates an order-independent
// Zobrist hash of the role's assignment set in O(1), and duplicate
// groups are read off hash buckets (verified by true set equality, so a
// hash collision can never merge distinct roles).
//
// One Index instance covers one side of the tripartite graph: feed it
// user assignments to track same-user groups, permission assignments to
// track same-permission groups.
package incremental

import (
	"fmt"
	"sort"

	"repro/internal/bitmat"
)

// Index tracks the assignment sets of a collection of roles and answers
// duplicate-group queries in time proportional to the answer.
//
// Roles and columns (users or permissions) are caller-chosen ints. The
// zero value is not usable; call New.
type Index struct {
	seed uint64
	// rows holds each role's assignment set.
	rows map[int]map[int]struct{}
	// hash holds each role's Zobrist hash: XOR of mix(col) over the set.
	hash map[int]uint64
	// buckets maps a hash to the roles currently carrying it.
	buckets map[uint64]map[int]struct{}
}

// New creates an empty index. The seed perturbs the per-column hash
// values; any value (including 0) is fine.
func New(seed uint64) *Index {
	return &Index{
		seed:    seed,
		rows:    make(map[int]map[int]struct{}),
		hash:    make(map[int]uint64),
		buckets: make(map[uint64]map[int]struct{}),
	}
}

// mix is splitmix64, mapping a column id to a pseudo-random word; XOR
// of mixed columns is an order-independent, incrementally updatable
// set hash (Zobrist hashing).
func (x *Index) mix(col int) uint64 {
	z := uint64(col)*0x9E3779B97F4A7C15 + x.seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Len returns the number of tracked roles.
func (x *Index) Len() int { return len(x.rows) }

// AddRole registers a role with an empty assignment set.
func (x *Index) AddRole(role int) error {
	if _, ok := x.rows[role]; ok {
		return fmt.Errorf("incremental: role %d already tracked", role)
	}
	x.rows[role] = make(map[int]struct{})
	x.hash[role] = 0
	x.bucketAdd(0, role)
	return nil
}

// RemoveRole forgets a role entirely.
func (x *Index) RemoveRole(role int) error {
	if _, ok := x.rows[role]; !ok {
		return fmt.Errorf("incremental: unknown role %d", role)
	}
	x.bucketRemove(x.hash[role], role)
	delete(x.rows, role)
	delete(x.hash, role)
	return nil
}

// Assign adds column col to the role's set. Assigning an already-held
// column is a no-op.
func (x *Index) Assign(role, col int) error {
	set, ok := x.rows[role]
	if !ok {
		return fmt.Errorf("incremental: unknown role %d", role)
	}
	if _, dup := set[col]; dup {
		return nil
	}
	set[col] = struct{}{}
	x.rehash(role, x.hash[role]^x.mix(col))
	return nil
}

// Revoke removes column col from the role's set. Revoking an absent
// column is a no-op.
func (x *Index) Revoke(role, col int) error {
	set, ok := x.rows[role]
	if !ok {
		return fmt.Errorf("incremental: unknown role %d", role)
	}
	if _, held := set[col]; !held {
		return nil
	}
	delete(set, col)
	x.rehash(role, x.hash[role]^x.mix(col))
	return nil
}

// rehash moves a role between hash buckets.
func (x *Index) rehash(role int, newHash uint64) {
	x.bucketRemove(x.hash[role], role)
	x.hash[role] = newHash
	x.bucketAdd(newHash, role)
}

func (x *Index) bucketAdd(h uint64, role int) {
	b := x.buckets[h]
	if b == nil {
		b = make(map[int]struct{})
		x.buckets[h] = b
	}
	b[role] = struct{}{}
}

func (x *Index) bucketRemove(h uint64, role int) {
	b := x.buckets[h]
	delete(b, role)
	if len(b) == 0 {
		delete(x.buckets, h)
	}
}

// setsEqual compares two assignment sets.
func setsEqual(a, b map[int]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// SameAs returns the other roles whose assignment sets are identical to
// the given role's, ascending. Empty sets count as identical to each
// other, mirroring rolediet.Groups; callers tracking class-4 findings
// usually exclude empty roles first (they are class-2 findings).
func (x *Index) SameAs(role int) ([]int, error) {
	set, ok := x.rows[role]
	if !ok {
		return nil, fmt.Errorf("incremental: unknown role %d", role)
	}
	var out []int
	for other := range x.buckets[x.hash[role]] {
		if other != role && setsEqual(set, x.rows[other]) {
			out = append(out, other)
		}
	}
	sort.Ints(out)
	return out, nil
}

// GroupOptions tunes Groups.
type GroupOptions struct {
	// IgnoreEmpty excludes roles with empty assignment sets, matching
	// how the detection framework separates class-2 from class-4
	// findings.
	IgnoreEmpty bool
}

// Groups returns all current duplicate groups: role lists of size >= 2
// with identical assignment sets, members ascending, groups ordered by
// smallest member.
//
// Bucket members are hash-equal, so almost every bucket is one true
// group; the verification that a collision never merges distinct roles
// used to walk the assignment maps pairwise (O(members² · set size) map
// probes on an organisation-scale duplicate bucket). Each bucket's sets
// are instead packed once into a column-remapped bit-matrix arena and
// compared with the word-level row-equality kernel.
func (x *Index) Groups(opts GroupOptions) [][]int {
	var groups [][]int
	colID := make(map[int]int)
	for _, bucket := range x.buckets {
		if len(bucket) < 2 {
			continue
		}
		members := make([]int, 0, len(bucket))
		for r := range bucket {
			if opts.IgnoreEmpty && len(x.rows[r]) == 0 {
				continue
			}
			members = append(members, r)
		}
		if len(members) < 2 {
			continue
		}
		sort.Ints(members)
		// Remap the bucket's column universe to a dense local range and
		// pack each member's set as one arena row.
		clear(colID)
		for _, r := range members {
			for c := range x.rows[r] {
				if _, ok := colID[c]; !ok {
					colID[c] = len(colID)
				}
			}
		}
		m := bitmat.New(len(members), len(colID))
		for i, r := range members {
			for c := range x.rows[r] {
				m.Set(i, colID[c])
			}
		}
		// Split the bucket by true equality (hash collisions).
		claimed := make([]bool, len(members))
		for i := range members {
			if claimed[i] {
				continue
			}
			group := []int{members[i]}
			for j := i + 1; j < len(members); j++ {
				if claimed[j] {
					continue
				}
				if m.RowEqual(i, j) {
					group = append(group, members[j])
					claimed[j] = true
				}
			}
			if len(group) >= 2 {
				groups = append(groups, group)
			}
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// Norm returns the size of a role's assignment set.
func (x *Index) Norm(role int) (int, error) {
	set, ok := x.rows[role]
	if !ok {
		return 0, fmt.Errorf("incremental: unknown role %d", role)
	}
	return len(set), nil
}

// Columns returns a role's assignment set, ascending.
func (x *Index) Columns(role int) ([]int, error) {
	set, ok := x.rows[role]
	if !ok {
		return nil, fmt.Errorf("incremental: unknown role %d", role)
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out, nil
}
