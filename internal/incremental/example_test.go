package incremental_test

import (
	"fmt"

	"repro/internal/incremental"
)

// Example tracks duplicate roles live: the clone becomes visible the
// moment its user set converges with the original, and disappears when
// it diverges.
func Example() {
	x := incremental.New(1)
	must := func(err error) {
		if err != nil {
			fmt.Println("error:", err)
		}
	}
	must(x.AddRole(1)) // viewer
	must(x.AddRole(2)) // viewer-clone
	must(x.Assign(1, 100))
	must(x.Assign(1, 101))
	must(x.Assign(2, 100))
	fmt.Println(x.Groups(incremental.GroupOptions{IgnoreEmpty: true}))

	must(x.Assign(2, 101)) // clone converges
	fmt.Println(x.Groups(incremental.GroupOptions{IgnoreEmpty: true}))

	must(x.Assign(2, 102)) // and diverges again
	fmt.Println(x.Groups(incremental.GroupOptions{IgnoreEmpty: true}))
	// Output:
	// []
	// [[1 2]]
	// []
}
