package incremental

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/cluster/rolediet"
)

func TestAddRemoveRole(t *testing.T) {
	x := New(1)
	if err := x.AddRole(7); err != nil {
		t.Fatal(err)
	}
	if err := x.AddRole(7); err == nil {
		t.Fatal("duplicate role accepted")
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d", x.Len())
	}
	if err := x.RemoveRole(7); err != nil {
		t.Fatal(err)
	}
	if err := x.RemoveRole(7); err == nil {
		t.Fatal("double remove accepted")
	}
	if x.Len() != 0 {
		t.Fatalf("Len = %d after remove", x.Len())
	}
}

func TestUnknownRoleOperations(t *testing.T) {
	x := New(1)
	if err := x.Assign(1, 2); err == nil {
		t.Fatal("Assign to unknown role accepted")
	}
	if err := x.Revoke(1, 2); err == nil {
		t.Fatal("Revoke on unknown role accepted")
	}
	if _, err := x.SameAs(1); err == nil {
		t.Fatal("SameAs on unknown role accepted")
	}
	if _, err := x.Norm(1); err == nil {
		t.Fatal("Norm on unknown role accepted")
	}
	if _, err := x.Columns(1); err == nil {
		t.Fatal("Columns on unknown role accepted")
	}
}

func TestAssignRevokeIdempotent(t *testing.T) {
	x := New(1)
	if err := x.AddRole(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := x.Assign(1, 5); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := x.Norm(1); n != 1 {
		t.Fatalf("Norm = %d after repeated Assign", n)
	}
	for i := 0; i < 3; i++ {
		if err := x.Revoke(1, 5); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := x.Norm(1); n != 0 {
		t.Fatalf("Norm = %d after repeated Revoke", n)
	}
}

func TestSameAsAndGroups(t *testing.T) {
	x := New(1)
	for r := 0; r < 4; r++ {
		if err := x.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []int{0, 2} { // roles 0 and 2 share {10, 11}
		_ = x.Assign(r, 10)
		_ = x.Assign(r, 11)
	}
	_ = x.Assign(1, 10) // role 1: {10}
	// role 3 stays empty

	same, err := x.SameAs(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same, []int{2}) {
		t.Fatalf("SameAs(0) = %v, want [2]", same)
	}
	same, _ = x.SameAs(1)
	if len(same) != 0 {
		t.Fatalf("SameAs(1) = %v, want none", same)
	}

	groups := x.Groups(GroupOptions{IgnoreEmpty: true})
	if !reflect.DeepEqual(groups, [][]int{{0, 2}}) {
		t.Fatalf("Groups = %v, want [[0 2]]", groups)
	}
	// With empties included, role 3 has no duplicate partner, so the
	// result is unchanged; add role 4 empty and they pair up.
	if err := x.AddRole(4); err != nil {
		t.Fatal(err)
	}
	groups = x.Groups(GroupOptions{})
	if !reflect.DeepEqual(groups, [][]int{{0, 2}, {3, 4}}) {
		t.Fatalf("Groups with empties = %v", groups)
	}
}

func TestMutationMovesGroups(t *testing.T) {
	x := New(1)
	for r := 0; r < 3; r++ {
		_ = x.AddRole(r)
		_ = x.Assign(r, 1)
		_ = x.Assign(r, 2)
	}
	if got := x.Groups(GroupOptions{}); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("initial groups = %v", got)
	}
	// Diverge role 1.
	if err := x.Assign(1, 3); err != nil {
		t.Fatal(err)
	}
	if got := x.Groups(GroupOptions{}); !reflect.DeepEqual(got, [][]int{{0, 2}}) {
		t.Fatalf("after assign groups = %v", got)
	}
	// Converge it back.
	if err := x.Revoke(1, 3); err != nil {
		t.Fatal(err)
	}
	if got := x.Groups(GroupOptions{}); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("after revoke groups = %v", got)
	}
	// Remove a member.
	if err := x.RemoveRole(2); err != nil {
		t.Fatal(err)
	}
	if got := x.Groups(GroupOptions{}); !reflect.DeepEqual(got, [][]int{{0, 1}}) {
		t.Fatalf("after remove groups = %v", got)
	}
}

func TestColumnsSorted(t *testing.T) {
	x := New(1)
	_ = x.AddRole(1)
	for _, c := range []int{9, 3, 7} {
		_ = x.Assign(1, c)
	}
	cols, err := x.Columns(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols, []int{3, 7, 9}) {
		t.Fatalf("Columns = %v", cols)
	}
}

// batchGroups recomputes duplicate groups from scratch with rolediet as
// the oracle.
func batchGroups(x *Index, numRoles, width int, ignoreEmpty bool) [][]int {
	// Materialise rows for the roles 0..numRoles-1 that still exist.
	var rows []*bitvec.Vector
	var ids []int
	for r := 0; r < numRoles; r++ {
		cols, err := x.Columns(r)
		if err != nil {
			continue // removed
		}
		if ignoreEmpty && len(cols) == 0 {
			continue
		}
		rows = append(rows, bitvec.FromIndices(width, cols))
		ids = append(ids, r)
	}
	res, err := rolediet.Groups(rows, rolediet.Options{Threshold: 0})
	if err != nil {
		panic(err)
	}
	out := make([][]int, len(res.Groups))
	for gi, g := range res.Groups {
		for _, i := range g {
			out[gi] = append(out[gi], ids[i])
		}
	}
	return out
}

func TestPropertyMatchesBatchUnderRandomOps(t *testing.T) {
	// Random mutation sequences: the incremental index must agree with
	// a from-scratch batch recomputation at every checkpoint.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const (
			numRoles = 12
			width    = 10
		)
		x := New(uint64(seed))
		alive := map[int]bool{}
		for step := 0; step < 120; step++ {
			role := r.Intn(numRoles)
			switch r.Intn(6) {
			case 0:
				if !alive[role] {
					if err := x.AddRole(role); err != nil {
						return false
					}
					alive[role] = true
				}
			case 1:
				if alive[role] {
					if err := x.RemoveRole(role); err != nil {
						return false
					}
					alive[role] = false
				}
			default:
				if alive[role] {
					col := r.Intn(width)
					var err error
					if r.Intn(2) == 0 {
						err = x.Assign(role, col)
					} else {
						err = x.Revoke(role, col)
					}
					if err != nil {
						return false
					}
				}
			}
			if step%20 == 19 {
				ignoreEmpty := r.Intn(2) == 0
				got := x.Groups(GroupOptions{IgnoreEmpty: ignoreEmpty})
				want := batchGroups(x, numRoles, width, ignoreEmpty)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestManyDuplicatesOneBucket(t *testing.T) {
	x := New(7)
	const n = 50
	for r := 0; r < n; r++ {
		_ = x.AddRole(r)
		_ = x.Assign(r, 100)
		_ = x.Assign(r, 200)
	}
	groups := x.Groups(GroupOptions{})
	if len(groups) != 1 || len(groups[0]) != n {
		t.Fatalf("groups = %v", groups)
	}
	same, _ := x.SameAs(0)
	if len(same) != n-1 {
		t.Fatalf("SameAs = %d members, want %d", len(same), n-1)
	}
}
