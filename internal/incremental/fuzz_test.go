package incremental

import (
	"fmt"
	"sort"
	"testing"
)

// bruteGroups recomputes the duplicate partition from a plain mirror of
// the assignment sets: bucket roles by their exact (sorted) column
// list, keep buckets of two or more, canonical order. No hashing
// anywhere — this is the ground truth the Zobrist buckets must match.
func bruteGroups(mirror map[int]map[int]struct{}, ignoreEmpty bool) [][]int {
	byKey := make(map[string][]int)
	for role, set := range mirror {
		if ignoreEmpty && len(set) == 0 {
			continue
		}
		cols := make([]int, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		byKey[fmt.Sprint(cols)] = append(byKey[fmt.Sprint(cols)], role)
	}
	var groups [][]int
	for _, g := range byKey {
		if len(g) < 2 {
			continue
		}
		sort.Ints(g)
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// sameGroups compares two canonical partitions.
func sameGroups(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// FuzzIncrementalVsBrute drives random add/remove/assign/revoke
// sequences through the index and checks Groups against brute-force
// recomputation after every mutation. The seed is fuzz-chosen too, so
// the Zobrist table itself is adversarial: a collision the buckets fail
// to split by true set equality shows up as a merged group here. Small
// role/column universes force heavy duplicate traffic, and errors from
// invalid ops (unknown role, double add) are expected — only panics and
// partition divergence fail.
func FuzzIncrementalVsBrute(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(1), []byte{0, 0, 0, 1, 2, 0, 2, 16, 2, 32})
	f.Add(uint64(0xDEADBEEF), []byte{0, 0, 0, 1, 0, 2, 2, 0, 2, 1, 2, 2, 3, 1})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		idx := New(seed)
		mirror := make(map[int]map[int]struct{})
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 4
			role := int(data[i+1]) % 6
			col := int(data[i+1]) / 6 % 8
			switch op {
			case 0:
				if err := idx.AddRole(role); err == nil {
					mirror[role] = make(map[int]struct{})
				} else if _, tracked := mirror[role]; !tracked {
					t.Fatalf("AddRole(%d) refused on untracked role: %v", role, err)
				}
			case 1:
				if err := idx.RemoveRole(role); err == nil {
					delete(mirror, role)
				} else if _, tracked := mirror[role]; tracked {
					t.Fatalf("RemoveRole(%d) refused on tracked role: %v", role, err)
				}
			case 2:
				if err := idx.Assign(role, col); err == nil {
					mirror[role][col] = struct{}{}
				} else if _, tracked := mirror[role]; tracked {
					t.Fatalf("Assign(%d,%d) refused on tracked role: %v", role, col, err)
				}
			case 3:
				if err := idx.Revoke(role, col); err == nil {
					delete(mirror[role], col)
				} else if _, tracked := mirror[role]; tracked {
					t.Fatalf("Revoke(%d,%d) refused on tracked role: %v", role, col, err)
				}
			}
			for _, ignoreEmpty := range []bool{false, true} {
				got := idx.Groups(GroupOptions{IgnoreEmpty: ignoreEmpty})
				want := bruteGroups(mirror, ignoreEmpty)
				if !sameGroups(got, want) {
					t.Fatalf("after %d ops (seed %#x, ignoreEmpty=%v): index %v != brute %v",
						i/2+1, seed, ignoreEmpty, got, want)
				}
			}
		}
	})
}
