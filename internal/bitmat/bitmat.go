// Package bitmat implements a flat, cache-aware bit-matrix arena shared
// by the clustering backends.
//
// Where package matrix stores one heap-allocated bitvec.Vector per row,
// bitmat packs every row into a single contiguous []uint64 with the row
// stride rounded up to a whole cache line (8 words = 64 bytes). Row i
// occupies words [i*stride, i*stride+words); the remaining stride-words
// padding words are always zero, which lets the distance kernels iterate
// the full stride in unrolled, remainder-free blocks without changing
// any popcount. Per-row norms |R_i| are precomputed at construction, so
// the triangle-inequality bound d(a,b) >= ||a|-|b|| is available to
// prune candidates before any XOR+popcount work.
//
// The arena is built once per grouping run (from the rbac.Dataset's
// assignment matrix or a row slice) and shared by every backend: the
// Role Diet inverted index walks RowWords, DBSCAN region queries go
// through the norm-pruned NeighborsInto/NeighborsAppend kernels, HNSW
// computes distances between stored ids with Hamming(i,j) instead of
// chasing per-node vector pointers, and bit-sampling LSH verifies
// candidates with HammingAtMost.
package bitmat

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/matrix"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
	// lineWords is the row stride granularity: 8 words = one 64-byte
	// cache line, so consecutive rows never share a line and the
	// unrolled kernels never need a remainder loop.
	lineWords = 8
)

// Matrix is a dense bit matrix stored as one contiguous word arena.
// The zero value is an empty 0x0 matrix; rows can be appended with
// AppendVector (the first append fixes the width).
type Matrix struct {
	bits   []uint64
	norms  []int32
	rows   int
	cols   int
	words  int // words of payload per row: ceil(cols/64)
	stride int // words per row in the arena: words rounded up to lineWords
}

// strideFor returns the arena stride for a row of the given word count.
func strideFor(words int) int {
	return (words + lineWords - 1) / lineWords * lineWords
}

// New returns an all-zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitmat: negative shape %dx%d", rows, cols))
	}
	if rows > math.MaxInt32 {
		panic(fmt.Sprintf("bitmat: %d rows overflow int32 ids", rows))
	}
	words := (cols + wordBits - 1) >> wordShift
	stride := strideFor(words)
	return &Matrix{
		bits:   make([]uint64, rows*stride),
		norms:  make([]int32, rows),
		rows:   rows,
		cols:   cols,
		words:  words,
		stride: stride,
	}
}

// FromRows packs the given row vectors into a fresh arena. All rows must
// share the same length.
func FromRows(rows []*bitvec.Vector) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := rows[0].Len()
	for i, r := range rows {
		if r.Len() != cols {
			return nil, fmt.Errorf("bitmat: row %d has length %d, want %d", i, r.Len(), cols)
		}
	}
	m := New(len(rows), cols)
	for i, r := range rows {
		dst := m.bits[i*m.stride:]
		n := int32(0)
		for j, w := range r.Words() {
			dst[j] = w
			n += int32(bits.OnesCount64(w))
		}
		m.norms[i] = n
	}
	return m, nil
}

// FromBitMatrix packs a matrix.BitMatrix into a fresh arena.
func FromBitMatrix(bm *matrix.BitMatrix) *Matrix {
	rows := make([]*bitvec.Vector, bm.Rows())
	for i := range rows {
		rows[i] = bm.Row(i)
	}
	m, err := FromRows(rows)
	if err != nil {
		// BitMatrix enforces uniform row widths, so this is unreachable.
		panic(err)
	}
	if m.rows == 0 {
		m.cols = bm.Cols()
		m.words = (m.cols + wordBits - 1) >> wordShift
		m.stride = strideFor(m.words)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (bits per row).
func (m *Matrix) Cols() int { return m.cols }

// Words returns the number of payload words per row.
func (m *Matrix) Words() int { return m.words }

// Stride returns the arena row stride in words.
func (m *Matrix) Stride() int { return m.stride }

// checkRow panics if i is out of range.
func (m *Matrix) checkRow(i int) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range [0,%d)", i, m.rows))
	}
}

// checkCol panics if j is out of range.
func (m *Matrix) checkCol(j int) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("bitmat: column %d out of range [0,%d)", j, m.cols))
	}
}

// Get reports whether cell (i, j) is set.
func (m *Matrix) Get(i, j int) bool {
	m.checkRow(i)
	m.checkCol(j)
	return m.bits[i*m.stride+j>>wordShift]&(1<<(uint(j)&wordMask)) != 0
}

// Set sets cell (i, j) to 1, keeping the row norm current.
func (m *Matrix) Set(i, j int) {
	m.checkRow(i)
	m.checkCol(j)
	w := &m.bits[i*m.stride+j>>wordShift]
	mask := uint64(1) << (uint(j) & wordMask)
	if *w&mask == 0 {
		*w |= mask
		m.norms[i]++
	}
}

// Clear sets cell (i, j) to 0, keeping the row norm current.
func (m *Matrix) Clear(i, j int) {
	m.checkRow(i)
	m.checkCol(j)
	w := &m.bits[i*m.stride+j>>wordShift]
	mask := uint64(1) << (uint(j) & wordMask)
	if *w&mask != 0 {
		*w &^= mask
		m.norms[i]--
	}
}

// Norm returns the number of set bits in row i (|R_i|).
func (m *Matrix) Norm(i int) int {
	m.checkRow(i)
	return int(m.norms[i])
}

// Norms exposes the per-row norms. The slice aliases the matrix storage;
// callers must treat it as read-only.
func (m *Matrix) Norms() []int32 { return m.norms }

// RowView returns row i's full stride (payload plus zero padding),
// aliasing the arena. Callers must treat it as read-only.
func (m *Matrix) RowView(i int) []uint64 {
	m.checkRow(i)
	s := m.stride
	return m.bits[i*s : i*s+s : i*s+s]
}

// RowWords returns row i's payload words (no padding), aliasing the
// arena. Callers must treat it as read-only.
func (m *Matrix) RowWords(i int) []uint64 {
	m.checkRow(i)
	s := m.stride
	return m.bits[i*s : i*s+m.words : i*s+m.words]
}

// RowVector copies row i into a fresh bitvec.Vector.
func (m *Matrix) RowVector(i int) *bitvec.Vector {
	v := bitvec.New(m.cols)
	copy(v.Words(), m.RowWords(i))
	return v
}

// RowEqual reports whether rows i and j hold identical bits.
func (m *Matrix) RowEqual(i, j int) bool {
	if m.norms[i] != m.norms[j] {
		return false
	}
	a := m.RowView(i)
	b := m.RowView(j)
	for k, w := range a {
		if w != b[k] {
			return false
		}
	}
	return true
}

// RowHash returns a 64-bit mixing hash over row i's words. Equal rows
// always hash equally; it is only a bucketing aid, so it does not match
// bitvec.Vector.Hash.
func (m *Matrix) RowHash(i int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range m.RowWords(i) {
		h ^= w
		h *= prime64
		h ^= h >> 29
	}
	h ^= uint64(m.cols)
	h *= prime64
	return h
}

// Hamming returns the Hamming distance between rows i and j. The loop
// runs over the padded stride in 4-word groups: padding is zero on both
// sides, so it never contributes to the count, and the stride being a
// multiple of 8 words means there is no remainder loop.
func (m *Matrix) Hamming(i, j int) int {
	m.checkRow(i)
	m.checkRow(j)
	s := m.stride
	a := m.bits[i*s : i*s+s : i*s+s]
	b := m.bits[j*s : j*s+s : j*s+s]
	b = b[:len(a)]
	total := 0
	for k := 0; k+4 <= len(a); k += 4 {
		total += bits.OnesCount64(a[k]^b[k]) +
			bits.OnesCount64(a[k+1]^b[k+1]) +
			bits.OnesCount64(a[k+2]^b[k+2]) +
			bits.OnesCount64(a[k+3]^b[k+3])
	}
	return total
}

// HammingAtMost reports whether Hamming(i, j) <= k, first applying the
// norm bound ||a|-|b|| and then short-circuiting the word loop as soon
// as the running count exceeds k.
func (m *Matrix) HammingAtMost(i, j, k int) bool {
	m.checkRow(i)
	m.checkRow(j)
	if k < 0 {
		return false
	}
	d := int(m.norms[i]) - int(m.norms[j])
	if d < 0 {
		d = -d
	}
	if d > k {
		return false
	}
	s := m.stride
	a := m.bits[i*s : i*s+s : i*s+s]
	b := m.bits[j*s : j*s+s : j*s+s]
	b = b[:len(a)]
	total := 0
	for w, aw := range a {
		total += bits.OnesCount64(aw ^ b[w])
		if total > k {
			return false
		}
	}
	return true
}

// Intersection returns the co-occurrence count g(i, j) = |R_i AND R_j|.
func (m *Matrix) Intersection(i, j int) int {
	m.checkRow(i)
	m.checkRow(j)
	s := m.stride
	a := m.bits[i*s : i*s+s : i*s+s]
	b := m.bits[j*s : j*s+s : j*s+s]
	b = b[:len(a)]
	total := 0
	for k := 0; k+4 <= len(a); k += 4 {
		total += bits.OnesCount64(a[k]&b[k]) +
			bits.OnesCount64(a[k+1]&b[k+1]) +
			bits.OnesCount64(a[k+2]&b[k+2]) +
			bits.OnesCount64(a[k+3]&b[k+3])
	}
	return total
}

// HammingWords returns the Hamming distance between an external query
// (given as packed words for the matrix width, len(q) >= m.Words()) and
// row i. Used for queries that are not arena rows, e.g. HNSW searches
// with a caller-supplied vector.
func (m *Matrix) HammingWords(q []uint64, i int) int {
	m.checkRow(i)
	nw := m.words
	q = q[:nw]
	r := m.RowWords(i)
	total := 0
	k := 0
	for ; k+4 <= nw; k += 4 {
		total += bits.OnesCount64(r[k]^q[k]) +
			bits.OnesCount64(r[k+1]^q[k+1]) +
			bits.OnesCount64(r[k+2]^q[k+2]) +
			bits.OnesCount64(r[k+3]^q[k+3])
	}
	for ; k < nw; k++ {
		total += bits.OnesCount64(r[k] ^ q[k])
	}
	return total
}

// blockRowsFor sizes a row block so the block's arena footprint stays
// around 32 KiB — comfortably inside L1d — while query rows of the
// query block stay resident alongside it.
func (m *Matrix) blockRowsFor() int {
	if m.stride == 0 {
		return 1 << 12
	}
	rows := (32 << 10) / (m.stride * 8)
	if rows < 16 {
		rows = 16
	}
	return rows
}

// queryBlock is the number of query rows processed per tile so their
// packed words stay hot while a row block streams past them.
const queryBlock = 8

// HammingBlock computes all distances between the query rows and the
// row range [lo, hi), tiled query-block x row-block so packed words are
// reused out of L1/L2 instead of re-streamed from memory per query.
// dst must have room for len(queries)*(hi-lo) entries; the distance
// between queries[qi] and row j lands in dst[qi*(hi-lo)+(j-lo)].
func (m *Matrix) HammingBlock(dst []int32, queries []int32, lo, hi int) {
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("bitmat: block range [%d,%d) out of bounds for %d rows", lo, hi, m.rows))
	}
	width := hi - lo
	if need := len(queries) * width; len(dst) < need {
		panic(fmt.Sprintf("bitmat: HammingBlock dst length %d < %d", len(dst), need))
	}
	blockRows := m.blockRowsFor()
	s := m.stride
	for qlo := 0; qlo < len(queries); qlo += queryBlock {
		qhi := qlo + queryBlock
		if qhi > len(queries) {
			qhi = len(queries)
		}
		for blo := lo; blo < hi; blo += blockRows {
			bhi := blo + blockRows
			if bhi > hi {
				bhi = hi
			}
			for qi := qlo; qi < qhi; qi++ {
				q := int(queries[qi])
				m.checkRow(q)
				a := m.bits[q*s : q*s+s : q*s+s]
				out := dst[qi*width+(blo-lo) : qi*width+(bhi-lo)]
				for j := blo; j < bhi; j++ {
					b := m.bits[j*s : j*s+s : j*s+s]
					b = b[:len(a)]
					total := 0
					for k := 0; k+4 <= len(a); k += 4 {
						total += bits.OnesCount64(a[k]^b[k]) +
							bits.OnesCount64(a[k+1]^b[k+1]) +
							bits.OnesCount64(a[k+2]^b[k+2]) +
							bits.OnesCount64(a[k+3]^b[k+3])
					}
					out[j-blo] = int32(total)
				}
			}
		}
	}
}

// NeighborsAppend appends to dst the ids of every row j in [lo, hi)
// with Hamming(p, j) <= kmax, in ascending order, including j == p when
// in range. The norm bound ||R_p|-|R_j|| > kmax skips candidates before
// any XOR+popcount work — the DBSCAN candidate-pruning pre-pass.
func (m *Matrix) NeighborsAppend(dst []int32, p, lo, hi, kmax int) []int32 {
	m.checkRow(p)
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("bitmat: neighbor range [%d,%d) out of bounds for %d rows", lo, hi, m.rows))
	}
	if kmax < 0 {
		return dst
	}
	s := m.stride
	norms := m.norms
	np := int(norms[p])
	a := m.bits[p*s : p*s+s : p*s+s]
	for j := lo; j < hi; j++ {
		d := np - int(norms[j])
		if d < 0 {
			d = -d
		}
		if d > kmax {
			continue
		}
		b := m.bits[j*s : j*s+s : j*s+s]
		b = b[:len(a)]
		total := 0
		for k := 0; k+4 <= len(a); k += 4 {
			total += bits.OnesCount64(a[k]^b[k]) +
				bits.OnesCount64(a[k+1]^b[k+1]) +
				bits.OnesCount64(a[k+2]^b[k+2]) +
				bits.OnesCount64(a[k+3]^b[k+3])
		}
		if total <= kmax {
			dst = append(dst, int32(j))
		}
	}
	return dst
}

// NeighborsInto appends, for every query q = queries[qi], the ids of
// rows j in [lo, hi) with Hamming(q, j) <= kmax onto neigh[qi], in
// ascending order. It is the tiled multi-query form of NeighborsAppend
// used by the parallel DBSCAN neighborhood precompute: row blocks are
// scanned once per query block so the arena streams through cache a
// query-block at a time instead of once per query.
func (m *Matrix) NeighborsInto(neigh [][]int32, queries []int32, lo, hi, kmax int) {
	if len(neigh) < len(queries) {
		panic(fmt.Sprintf("bitmat: NeighborsInto neigh length %d < %d queries", len(neigh), len(queries)))
	}
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("bitmat: neighbor range [%d,%d) out of bounds for %d rows", lo, hi, m.rows))
	}
	if kmax < 0 {
		return
	}
	blockRows := m.blockRowsFor()
	s := m.stride
	norms := m.norms
	for qlo := 0; qlo < len(queries); qlo += queryBlock {
		qhi := qlo + queryBlock
		if qhi > len(queries) {
			qhi = len(queries)
		}
		for blo := lo; blo < hi; blo += blockRows {
			bhi := blo + blockRows
			if bhi > hi {
				bhi = hi
			}
			for qi := qlo; qi < qhi; qi++ {
				p := int(queries[qi])
				m.checkRow(p)
				np := int(norms[p])
				a := m.bits[p*s : p*s+s : p*s+s]
				out := neigh[qi]
				for j := blo; j < bhi; j++ {
					d := np - int(norms[j])
					if d < 0 {
						d = -d
					}
					if d > kmax {
						continue
					}
					b := m.bits[j*s : j*s+s : j*s+s]
					b = b[:len(a)]
					total := 0
					for k := 0; k+4 <= len(a); k += 4 {
						total += bits.OnesCount64(a[k]^b[k]) +
							bits.OnesCount64(a[k+1]^b[k+1]) +
							bits.OnesCount64(a[k+2]^b[k+2]) +
							bits.OnesCount64(a[k+3]^b[k+3])
					}
					if total <= kmax {
						out = append(out, int32(j))
					}
				}
				neigh[qi] = out
			}
		}
	}
}

// ForEachSet calls fn for each set column of row i in ascending order.
func (m *Matrix) ForEachSet(i int, fn func(j int)) {
	for wi, w := range m.RowWords(i) {
		base := wi << wordShift
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendVector appends a row to the matrix, growing the arena as needed,
// and returns the new row's id. On an empty, never-sized matrix the
// first append fixes the width; afterwards the row length must match.
// Used by the HNSW index, which grows one row per inserted element.
func (m *Matrix) AppendVector(v *bitvec.Vector) int {
	if m.rows == 0 && m.cols == 0 && m.words == 0 {
		m.cols = v.Len()
		m.words = (m.cols + wordBits - 1) >> wordShift
		m.stride = strideFor(m.words)
	}
	if v.Len() != m.cols {
		panic(fmt.Sprintf("bitmat: appended row length %d, want %d", v.Len(), m.cols))
	}
	if m.rows >= math.MaxInt32 {
		panic(fmt.Sprintf("bitmat: %d rows overflow int32 ids", m.rows+1))
	}
	id := m.rows
	need := (id + 1) * m.stride
	if need > cap(m.bits) {
		newCap := 2 * cap(m.bits)
		if newCap < need {
			newCap = need
		}
		nb := make([]uint64, len(m.bits), newCap)
		copy(nb, m.bits)
		m.bits = nb
	}
	// Extending len within cap exposes memory that has never been
	// written (make zeroes the full capacity), so padding stays zero.
	m.bits = m.bits[:need]
	dst := m.bits[id*m.stride:]
	n := int32(0)
	for j, w := range v.Words() {
		dst[j] = w
		n += int32(bits.OnesCount64(w))
	}
	m.norms = append(m.norms, n)
	m.rows++
	return id
}
