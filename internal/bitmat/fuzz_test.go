package bitmat

import (
	"testing"

	"repro/internal/bitvec"
)

// fuzzRows reconstructs a small corpus of equal-width rows from fuzzed
// bytes. Width is derived from the byte count plus a fuzzed trim so the
// arena lands on word boundaries, mid-word offsets, and every stride
// remainder class (1..8 payload words per cache line) alike.
func fuzzRows(data []byte, trim uint8, nrows int) []*bitvec.Vector {
	if len(data) == 0 || len(data) > 96 {
		return nil
	}
	width := len(data)*8 - int(trim%8)
	if width <= 0 {
		return nil
	}
	rows := make([]*bitvec.Vector, nrows)
	for r := range rows {
		v := bitvec.New(width)
		for i := 0; i < width; i++ {
			// Each row reads the byte stream at a different rotation so
			// rows differ without needing more fuzz input.
			if data[(i/8+r*3)%len(data)]&(1<<((i+r)%8)) != 0 {
				v.Set(i)
			}
		}
		rows[r] = v
	}
	return rows
}

// checkPaddingF fails if any padding word is nonzero — the invariant
// every unrolled kernel depends on.
func checkPaddingF(t *testing.T, m *Matrix) {
	t.Helper()
	for i := 0; i < m.Rows(); i++ {
		view := m.RowView(i)
		for k := m.Words(); k < len(view); k++ {
			if view[k] != 0 {
				t.Fatalf("row %d padding word %d is %#x, want 0", i, k, view[k])
			}
		}
	}
}

// FuzzBitmatHammingParity checks every arena distance kernel against the
// bitvec.Vector reference path: pairwise Hamming, the short-circuiting
// HammingAtMost, external-query HammingWords, and the tiled
// HammingBlock must all agree with the scalar loop on arbitrary widths.
func FuzzBitmatHammingParity(f *testing.F) {
	f.Add([]byte{0xaa, 0x55, 0x00, 0xff}, uint8(3), uint8(2))
	f.Add([]byte{0x01}, uint8(0), uint8(0))
	f.Add(make([]byte, 64), uint8(7), uint8(255))
	f.Add([]byte{0xff, 0x0f, 0xf0}, uint8(1), uint8(17))
	f.Fuzz(func(t *testing.T, data []byte, trim, kseed uint8) {
		rows := fuzzRows(data, trim, 5)
		if rows == nil {
			return
		}
		m, err := FromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		checkPaddingF(t, m)
		width := rows[0].Len()
		k := int(kseed) % (width + 2)
		for i := range rows {
			if got, want := m.HammingWords(rows[i].Words(), 0), rows[i].Hamming(rows[0]); got != want {
				t.Fatalf("HammingWords(row %d, 0) = %d, scalar = %d", i, got, want)
			}
			for j := range rows {
				want := rows[i].Hamming(rows[j])
				if got := m.Hamming(i, j); got != want {
					t.Fatalf("width %d: Hamming(%d,%d) = %d, scalar = %d", width, i, j, got, want)
				}
				if got, want := m.HammingAtMost(i, j, k), want <= k; got != want {
					t.Fatalf("width %d: HammingAtMost(%d,%d,%d) = %v, scalar = %v", width, i, j, k, got, want)
				}
			}
		}
		queries := []int32{0, int32(len(rows) - 1), 2}
		dst := make([]int32, len(queries)*len(rows))
		m.HammingBlock(dst, queries, 0, len(rows))
		for qi, q := range queries {
			for j := range rows {
				if got, want := int(dst[qi*len(rows)+j]), rows[q].Hamming(rows[j]); got != want {
					t.Fatalf("HammingBlock(q=%d, %d) = %d, scalar = %d", q, j, got, want)
				}
			}
		}
	})
}

// FuzzBitmatNormParity checks the precomputed norms against Count and
// the norm-pruned neighbor kernels against a brute-force scan: pruning
// must never drop a row whose true distance is within kmax (the
// boundary ||a|-|b|| == kmax case in particular).
func FuzzBitmatNormParity(f *testing.F) {
	f.Add([]byte{0x00, 0xff}, uint8(0), uint8(1))
	f.Add([]byte{0xaa, 0x55, 0xcc}, uint8(5), uint8(0))
	f.Add(make([]byte, 33), uint8(2), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, trim, kseed uint8) {
		rows := fuzzRows(data, trim, 6)
		if rows == nil {
			return
		}
		m, err := FromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		width := rows[0].Len()
		for i, r := range rows {
			if m.Norm(i) != r.Count() {
				t.Fatalf("Norm(%d) = %d, Count = %d", i, m.Norm(i), r.Count())
			}
		}
		kmax := int(kseed) % (width + 2)
		neigh := make([][]int32, len(rows))
		queries := make([]int32, len(rows))
		for i := range queries {
			queries[i] = int32(i)
		}
		m.NeighborsInto(neigh, queries, 0, len(rows), kmax)
		for p := range rows {
			var want []int32
			for j := range rows {
				if rows[p].Hamming(rows[j]) <= kmax {
					want = append(want, int32(j))
				}
			}
			for _, got := range [][]int32{m.NeighborsAppend(nil, p, 0, len(rows), kmax), neigh[p]} {
				if len(got) != len(want) {
					t.Fatalf("p=%d kmax=%d: pruned scan found %v, brute force %v", p, kmax, got, want)
				}
				for x := range got {
					if got[x] != want[x] {
						t.Fatalf("p=%d kmax=%d: pruned scan found %v, brute force %v", p, kmax, got, want)
					}
				}
			}
		}
	})
}

// FuzzBitmatCooccurrenceParity checks Intersection against the bitvec
// co-occurrence reference and the paper's identity
// Hamming(i,j) = |R_i| + |R_j| - 2*g(i,j) on the arena kernels.
func FuzzBitmatCooccurrenceParity(f *testing.F) {
	f.Add([]byte{0x0f, 0xf0}, uint8(0))
	f.Add([]byte{0xff}, uint8(7))
	f.Add(make([]byte, 48), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, trim uint8) {
		rows := fuzzRows(data, trim, 4)
		if rows == nil {
			return
		}
		m, err := FromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			for j := range rows {
				g := m.Intersection(i, j)
				if want := rows[i].IntersectionCount(rows[j]); g != want {
					t.Fatalf("Intersection(%d,%d) = %d, scalar = %d", i, j, g, want)
				}
				if m.Hamming(i, j) != m.Norm(i)+m.Norm(j)-2*g {
					t.Fatalf("Hamming identity violated at (%d,%d)", i, j)
				}
			}
		}
	})
}
