package bitmat

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
)

// Kernel micro-benchmarks: the fast inner loop for perf PRs
// (`make bench-kernels`). The corpus shape mirrors a mid-size RBAC
// side: 512 roles over 2048 users, clustered so norm pruning has
// realistic (not degenerate) selectivity.
const (
	benchRows = 512
	benchCols = 2048
)

func benchCorpus() ([]*bitvec.Vector, *Matrix) {
	rng := rand.New(rand.NewSource(42))
	rows := make([]*bitvec.Vector, benchRows)
	for i := range rows {
		v := bitvec.New(benchCols)
		// ~32 clusters of similar rows: same base pattern per cluster,
		// with a couple of per-row flips.
		cluster := i / 16
		cr := rand.New(rand.NewSource(int64(cluster)))
		for j := 0; j < benchCols; j++ {
			if cr.Float64() < 0.1 {
				v.Set(j)
			}
		}
		for f := 0; f < 3; f++ {
			j := rng.Intn(benchCols)
			v.SetTo(j, !v.Get(j))
		}
		rows[i] = v
	}
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return rows, m
}

// BenchmarkKernelHammingPairwise measures arena row-to-row distances —
// the HNSW build/search inner loop.
func BenchmarkKernelHammingPairwise(b *testing.B) {
	_, m := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		for p := 0; p < benchRows; p++ {
			sink += m.Hamming(p, (p*31+i)%benchRows)
		}
	}
	_ = sink
}

// BenchmarkKernelHammingPairwiseRef is the pre-arena reference: the
// same distances through per-row *bitvec.Vector pointers.
func BenchmarkKernelHammingPairwiseRef(b *testing.B) {
	rows, _ := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		for p := 0; p < benchRows; p++ {
			sink += rows[p].Hamming(rows[(p*31+i)%benchRows])
		}
	}
	_ = sink
}

// BenchmarkKernelHammingBlock measures the tiled all-pairs kernel —
// the parallel DBSCAN neighborhood precompute without pruning.
func BenchmarkKernelHammingBlock(b *testing.B) {
	_, m := benchCorpus()
	queries := make([]int32, benchRows)
	for i := range queries {
		queries[i] = int32(i)
	}
	dst := make([]int32, benchRows*benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.HammingBlock(dst, queries, 0, benchRows)
	}
}

// BenchmarkKernelHammingBatchRef is the pre-arena reference for the
// all-pairs scan: bitvec.HammingBatch once per query row.
func BenchmarkKernelHammingBatchRef(b *testing.B) {
	rows, _ := benchCorpus()
	dst := make([]int, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < benchRows; p++ {
			bitvec.HammingBatch(dst, rows, rows[p])
		}
	}
}

// BenchmarkKernelNeighborsPruned measures the norm-pruned region scan
// at the similar-roles threshold (kmax=1) — the DBSCAN hot path after
// this PR.
func BenchmarkKernelNeighborsPruned(b *testing.B) {
	_, m := benchCorpus()
	queries := make([]int32, benchRows)
	for i := range queries {
		queries[i] = int32(i)
	}
	neigh := make([][]int32, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := range neigh {
			neigh[q] = neigh[q][:0]
		}
		m.NeighborsInto(neigh, queries, 0, benchRows, 1)
	}
}

// BenchmarkKernelIntersection measures co-occurrence counts g(i,j) —
// the Role Diet pair-verification kernel.
func BenchmarkKernelIntersection(b *testing.B) {
	_, m := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		for p := 0; p < benchRows; p++ {
			sink += m.Intersection(p, (p*17+i)%benchRows)
		}
	}
	_ = sink
}
