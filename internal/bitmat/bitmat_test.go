package bitmat

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/matrix"
)

// randRows builds n random rows of the given width with roughly the
// given density of set bits.
func randRows(rng *rand.Rand, n, cols int, density float64) []*bitvec.Vector {
	rows := make([]*bitvec.Vector, n)
	for i := range rows {
		v := bitvec.New(cols)
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				v.Set(j)
			}
		}
		rows[i] = v
	}
	return rows
}

// checkPadding fails the test if any padding word of any row is nonzero.
func checkPadding(t *testing.T, m *Matrix) {
	t.Helper()
	for i := 0; i < m.Rows(); i++ {
		view := m.RowView(i)
		for k := m.Words(); k < len(view); k++ {
			if view[k] != 0 {
				t.Fatalf("row %d padding word %d is %#x, want 0", i, k, view[k])
			}
		}
	}
}

func TestFromRowsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cols := range []int{0, 1, 5, 63, 64, 65, 127, 128, 200, 511, 512, 513, 1000} {
		rows := randRows(rng, 17, cols, 0.3)
		m, err := FromRows(rows)
		if err != nil {
			t.Fatalf("cols=%d: FromRows: %v", cols, err)
		}
		if m.Rows() != len(rows) || m.Cols() != cols {
			t.Fatalf("cols=%d: shape %dx%d, want %dx%d", cols, m.Rows(), m.Cols(), len(rows), cols)
		}
		if m.Stride()%lineWords != 0 {
			t.Fatalf("cols=%d: stride %d not a multiple of %d", cols, m.Stride(), lineWords)
		}
		checkPadding(t, m)
		for i, r := range rows {
			if got, want := m.Norm(i), r.Count(); got != want {
				t.Fatalf("cols=%d: Norm(%d)=%d, want %d", cols, i, got, want)
			}
			if !m.RowVector(i).Equal(r) {
				t.Fatalf("cols=%d: RowVector(%d) differs from source", cols, i)
			}
			for j := 0; j < cols; j++ {
				if m.Get(i, j) != r.Get(j) {
					t.Fatalf("cols=%d: Get(%d,%d)=%v, want %v", cols, i, j, m.Get(i, j), r.Get(j))
				}
			}
		}
		for i := range rows {
			for j := range rows {
				if got, want := m.Hamming(i, j), rows[i].Hamming(rows[j]); got != want {
					t.Fatalf("cols=%d: Hamming(%d,%d)=%d, want %d", cols, i, j, got, want)
				}
				if got, want := m.Intersection(i, j), rows[i].IntersectionCount(rows[j]); got != want {
					t.Fatalf("cols=%d: Intersection(%d,%d)=%d, want %d", cols, i, j, got, want)
				}
				for _, k := range []int{-1, 0, 1, 2, cols / 2, cols} {
					if got, want := m.HammingAtMost(i, j, k), k >= 0 && rows[i].Hamming(rows[j]) <= k; got != want {
						t.Fatalf("cols=%d: HammingAtMost(%d,%d,%d)=%v, want %v", cols, i, j, k, got, want)
					}
				}
				if got, want := m.RowEqual(i, j), rows[i].Equal(rows[j]); got != want {
					t.Fatalf("cols=%d: RowEqual(%d,%d)=%v, want %v", cols, i, j, got, want)
				}
				if rows[i].Equal(rows[j]) && m.RowHash(i) != m.RowHash(j) {
					t.Fatalf("cols=%d: equal rows %d,%d hash differently", cols, i, j)
				}
			}
		}
	}
}

func TestHammingWordsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, cols := range []int{1, 64, 65, 300, 513} {
		rows := randRows(rng, 9, cols, 0.4)
		m, err := FromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		q := randRows(rng, 1, cols, 0.4)[0]
		for i, r := range rows {
			if got, want := m.HammingWords(q.Words(), i), q.Hamming(r); got != want {
				t.Fatalf("cols=%d: HammingWords(q,%d)=%d, want %d", cols, i, got, want)
			}
		}
	}
}

func TestHammingBlockParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := randRows(rng, 200, 300, 0.25)
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	queries := []int32{0, 7, 199, 42, 42, 100}
	for _, span := range [][2]int{{0, 200}, {13, 157}, {50, 50}, {199, 200}} {
		lo, hi := span[0], span[1]
		width := hi - lo
		dst := make([]int32, len(queries)*width)
		m.HammingBlock(dst, queries, lo, hi)
		for qi, q := range queries {
			for j := lo; j < hi; j++ {
				want := rows[q].Hamming(rows[j])
				if got := int(dst[qi*width+(j-lo)]); got != want {
					t.Fatalf("span [%d,%d): dist(q=%d, %d)=%d, want %d", lo, hi, q, j, got, want)
				}
			}
		}
	}
}

func TestNeighborsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := randRows(rng, 120, 150, 0.2)
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, kmax := range []int{-1, 0, 1, 3, 10, 150} {
		for _, span := range [][2]int{{0, 120}, {20, 90}} {
			lo, hi := span[0], span[1]
			for p := 0; p < 120; p += 7 {
				var want []int32
				for j := lo; j < hi; j++ {
					if kmax >= 0 && rows[p].Hamming(rows[j]) <= kmax {
						want = append(want, int32(j))
					}
				}
				got := m.NeighborsAppend(nil, p, lo, hi, kmax)
				if len(got) != len(want) {
					t.Fatalf("p=%d kmax=%d span [%d,%d): got %d neighbors, want %d", p, kmax, lo, hi, len(got), len(want))
				}
				for x := range got {
					if got[x] != want[x] {
						t.Fatalf("p=%d kmax=%d: neighbor %d is %d, want %d", p, kmax, x, got[x], want[x])
					}
				}
			}
			queries := []int32{0, 7, 14, 21, 28, 35, 42, 49, 56, 63, 119}
			neigh := make([][]int32, len(queries))
			m.NeighborsInto(neigh, queries, lo, hi, kmax)
			for qi, p := range queries {
				want := m.NeighborsAppend(nil, int(p), lo, hi, kmax)
				got := neigh[qi]
				if len(got) != len(want) {
					t.Fatalf("NeighborsInto q=%d kmax=%d: got %d, want %d", p, kmax, len(got), len(want))
				}
				for x := range got {
					if got[x] != want[x] {
						t.Fatalf("NeighborsInto q=%d kmax=%d: entry %d is %d, want %d", p, kmax, x, got[x], want[x])
					}
				}
			}
		}
	}
}

// TestNeighborsNormBoundary pins the strictness of the pruning bound:
// a candidate with ||a|-|b|| == kmax must NOT be pruned — its distance
// can still equal kmax exactly.
func TestNeighborsNormBoundary(t *testing.T) {
	// Row 0: bits {0,1}. Row 1: bits {0,1,2} — norm gap 1, distance 1.
	// Row 2: bits {5,6,7} — norm gap 1, distance 5 (norm bound alone
	// would admit it; the popcount must reject it).
	a := bitvec.FromIndices(10, []int{0, 1})
	b := bitvec.FromIndices(10, []int{0, 1, 2})
	c := bitvec.FromIndices(10, []int{5, 6, 7})
	m, err := FromRows([]*bitvec.Vector{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	got := m.NeighborsAppend(nil, 0, 0, 3, 1)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("neighbors of row 0 at kmax=1: %v, want [0 1]", got)
	}
}

func TestAppendVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := randRows(rng, 50, 130, 0.3)
	var m Matrix
	for i, r := range rows {
		if id := m.AppendVector(r); id != i {
			t.Fatalf("AppendVector returned id %d, want %d", id, i)
		}
	}
	ref, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != ref.Rows() || m.Cols() != ref.Cols() {
		t.Fatalf("shape %dx%d, want %dx%d", m.Rows(), m.Cols(), ref.Rows(), ref.Cols())
	}
	checkPadding(t, &m)
	for i := range rows {
		if m.Norm(i) != ref.Norm(i) {
			t.Fatalf("Norm(%d)=%d, want %d", i, m.Norm(i), ref.Norm(i))
		}
		for j := range rows {
			if m.Hamming(i, j) != ref.Hamming(i, j) {
				t.Fatalf("Hamming(%d,%d) mismatch after append", i, j)
			}
		}
	}
}

func TestSetAndNorms(t *testing.T) {
	m := New(3, 100)
	m.Set(0, 5)
	m.Set(0, 5) // idempotent
	m.Set(0, 99)
	m.Set(2, 64)
	if m.Norm(0) != 2 || m.Norm(1) != 0 || m.Norm(2) != 1 {
		t.Fatalf("norms = %d,%d,%d, want 2,0,1", m.Norm(0), m.Norm(1), m.Norm(2))
	}
	if !m.Get(0, 5) || !m.Get(0, 99) || !m.Get(2, 64) || m.Get(1, 5) {
		t.Fatal("Get/Set mismatch")
	}
	if m.Hamming(0, 2) != 3 {
		t.Fatalf("Hamming(0,2)=%d, want 3", m.Hamming(0, 2))
	}
	var got []int
	m.ForEachSet(0, func(j int) { got = append(got, j) })
	if len(got) != 2 || got[0] != 5 || got[1] != 99 {
		t.Fatalf("ForEachSet(0) = %v, want [5 99]", got)
	}
}

func TestFromBitMatrix(t *testing.T) {
	bm := matrix.NewBitMatrix(4, 70)
	bm.Set(0, 0)
	bm.Set(1, 69)
	bm.Set(3, 33)
	m := FromBitMatrix(bm)
	if m.Rows() != 4 || m.Cols() != 70 {
		t.Fatalf("shape %dx%d, want 4x70", m.Rows(), m.Cols())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 70; j++ {
			if m.Get(i, j) != bm.Get(i, j) {
				t.Fatalf("cell (%d,%d) mismatch", i, j)
			}
		}
	}

	empty := FromBitMatrix(matrix.NewBitMatrix(0, 70))
	if empty.Rows() != 0 || empty.Cols() != 70 {
		t.Fatalf("empty shape %dx%d, want 0x70", empty.Rows(), empty.Cols())
	}
}

func TestEmptyMatrix(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty FromRows shape %dx%d", m.Rows(), m.Cols())
	}
	z := New(4, 0)
	if z.Hamming(0, 3) != 0 || !z.RowEqual(0, 1) || z.Norm(2) != 0 {
		t.Fatal("zero-width matrix misbehaves")
	}
}
