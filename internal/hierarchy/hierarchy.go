// Package hierarchy adds RBAC1-style role inheritance on top of the
// flat model and extends the inefficiency taxonomy to it.
//
// The paper analyses flat RBAC (RBAC0): users–roles–permissions. Most
// commercial platforms it targets also support role hierarchies, where
// a senior role inherits every permission of its juniors. A hierarchy
// changes the cleanup problem in two ways, both handled here:
//
//   - detection must run on the *flattened* assignments (a role's
//     effective permissions include everything reachable through the
//     inheritance DAG), otherwise two roles that differ only in how
//     they spell out the same inheritance would not be caught;
//   - inheritance introduces its own inefficiency classes: redundant
//     edges (an edge implied by a longer path), self-contained seniors
//     (a senior whose direct permissions already include everything a
//     junior grants), and cycles (which make the hierarchy ill-formed).
package hierarchy

import (
	"fmt"
	"sort"

	"repro/internal/rbac"
)

// Hierarchy is a set of inheritance edges over a dataset's roles:
// senior -> junior means the senior inherits the junior's permissions.
type Hierarchy struct {
	ds *rbac.Dataset
	// juniors[r] lists the direct juniors of role index r.
	juniors map[int]map[int]struct{}
}

// New creates an empty hierarchy over a dataset snapshot. The dataset
// is cloned; later mutations of the original are not observed.
func New(d *rbac.Dataset) *Hierarchy {
	return &Hierarchy{
		ds:      d.Clone(),
		juniors: make(map[int]map[int]struct{}),
	}
}

// Dataset returns the underlying snapshot.
func (h *Hierarchy) Dataset() *rbac.Dataset { return h.ds }

// AddInheritance records that senior inherits junior. Self-inheritance
// is rejected; duplicate edges are a no-op.
func (h *Hierarchy) AddInheritance(senior, junior rbac.RoleID) error {
	si, ok := h.ds.RoleIndex(senior)
	if !ok {
		return fmt.Errorf("hierarchy: %w: %q", rbac.ErrUnknownRole, senior)
	}
	ji, ok := h.ds.RoleIndex(junior)
	if !ok {
		return fmt.Errorf("hierarchy: %w: %q", rbac.ErrUnknownRole, junior)
	}
	if si == ji {
		return fmt.Errorf("hierarchy: role %q cannot inherit itself", senior)
	}
	set := h.juniors[si]
	if set == nil {
		set = make(map[int]struct{})
		h.juniors[si] = set
	}
	set[ji] = struct{}{}
	return nil
}

// NumEdges returns the number of direct inheritance edges.
func (h *Hierarchy) NumEdges() int {
	n := 0
	for _, set := range h.juniors {
		n += len(set)
	}
	return n
}

// Juniors returns the direct juniors of a role, sorted.
func (h *Hierarchy) Juniors(senior rbac.RoleID) ([]rbac.RoleID, error) {
	si, ok := h.ds.RoleIndex(senior)
	if !ok {
		return nil, fmt.Errorf("hierarchy: %w: %q", rbac.ErrUnknownRole, senior)
	}
	out := make([]rbac.RoleID, 0, len(h.juniors[si]))
	for ji := range h.juniors[si] {
		out = append(out, h.ds.Role(ji))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Cycles returns the roles involved in inheritance cycles (ids sorted).
// A well-formed hierarchy returns an empty slice; detection and
// flattening still work in the presence of cycles (members of a cycle
// all reach the same permission set) but the cycle itself is reported
// as an inefficiency because any cycle collapses to a single role.
func (h *Hierarchy) Cycles() []rbac.RoleID {
	// Tarjan-free approach: iterative DFS with colour marking; a role is
	// cyclic if it can reach itself.
	n := h.ds.NumRoles()
	reach := h.transitiveClosure(n)
	var out []rbac.RoleID
	for r := 0; r < n; r++ {
		if _, selfReach := reach[r][r]; selfReach {
			out = append(out, h.ds.Role(r))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// transitiveClosure computes reach[r] = set of roles reachable from r
// through one or more inheritance edges.
func (h *Hierarchy) transitiveClosure(n int) []map[int]struct{} {
	reach := make([]map[int]struct{}, n)
	var dfs func(r int) map[int]struct{}
	visiting := make(map[int]bool, n)
	dfs = func(r int) map[int]struct{} {
		if reach[r] != nil {
			return reach[r]
		}
		if visiting[r] {
			// Cycle: return a partial set; the caller completes it on
			// a later pass below.
			return map[int]struct{}{}
		}
		visiting[r] = true
		set := make(map[int]struct{})
		for j := range h.juniors[r] {
			set[j] = struct{}{}
			for jj := range dfs(j) {
				set[jj] = struct{}{}
			}
		}
		visiting[r] = false
		reach[r] = set
		return set
	}
	for r := 0; r < n; r++ {
		dfs(r)
	}
	// One propagation sweep fixes sets truncated by cycle short-circuits:
	// iterate until stable (bounded by n sweeps; real hierarchies are
	// shallow, cycles are small).
	for changed := true; changed; {
		changed = false
		for r := 0; r < n; r++ {
			before := len(reach[r])
			for j := range h.juniors[r] {
				reach[r][j] = struct{}{}
				for jj := range reach[j] {
					reach[r][jj] = struct{}{}
				}
			}
			if len(reach[r]) != before {
				changed = true
			}
		}
	}
	return reach
}

// Flatten materialises the effective flat dataset: every role keeps its
// direct users, and its permission set becomes the union of its own and
// every reachable junior's direct permissions. The result feeds the
// paper's flat detection framework unchanged.
func (h *Hierarchy) Flatten() (*rbac.Dataset, error) {
	n := h.ds.NumRoles()
	reach := h.transitiveClosure(n)
	out := h.ds.Clone()
	for r := 0; r < n; r++ {
		senior := h.ds.Role(r)
		for j := range reach[r] {
			perms, err := h.ds.RolePermissions(h.ds.Role(j))
			if err != nil {
				return nil, err
			}
			for _, p := range perms {
				if err := out.AssignPermission(senior, p); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// RedundantEdge is a direct inheritance edge implied by another path.
type RedundantEdge struct {
	Senior rbac.RoleID `json:"senior"`
	Junior rbac.RoleID `json:"junior"`
}

// RedundantEdges finds direct edges senior->junior where junior is also
// reachable from senior through some other junior — the hierarchy
// version of duplicate assignments, safe to delete without changing
// any effective permission set.
func (h *Hierarchy) RedundantEdges() []RedundantEdge {
	n := h.ds.NumRoles()
	reach := h.transitiveClosure(n)
	var out []RedundantEdge
	for si, set := range h.juniors {
		for ji := range set {
			for mid := range set {
				if mid == ji {
					continue
				}
				if _, ok := reach[mid][ji]; ok {
					out = append(out, RedundantEdge{
						Senior: h.ds.Role(si),
						Junior: h.ds.Role(ji),
					})
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Senior != out[j].Senior {
			return out[i].Senior < out[j].Senior
		}
		return out[i].Junior < out[j].Junior
	})
	return out
}

// SelfContainedSeniors finds inheritance edges that grant nothing: the
// senior's own flattened permissions (excluding the edge in question)
// already cover everything the junior provides. Such edges are
// candidates for removal during a cleanup review.
func (h *Hierarchy) SelfContainedSeniors() ([]RedundantEdge, error) {
	n := h.ds.NumRoles()
	reach := h.transitiveClosure(n)

	// effective[r] = direct + inherited permission indices of role r.
	effective := make([]map[int]struct{}, n)
	directPerms := make([][]int, n)
	for r := 0; r < n; r++ {
		perms, err := h.ds.RolePermissions(h.ds.Role(r))
		if err != nil {
			return nil, err
		}
		idxs := make([]int, 0, len(perms))
		for _, p := range perms {
			pi, _ := h.ds.PermissionIndex(p)
			idxs = append(idxs, pi)
		}
		directPerms[r] = idxs
	}
	for r := 0; r < n; r++ {
		set := make(map[int]struct{}, len(directPerms[r]))
		for _, p := range directPerms[r] {
			set[p] = struct{}{}
		}
		for j := range reach[r] {
			for _, p := range directPerms[j] {
				set[p] = struct{}{}
			}
		}
		effective[r] = set
	}

	var out []RedundantEdge
	for si, set := range h.juniors {
		for ji := range set {
			// What the edge actually contributes: junior's effective set.
			contributes := false
			check := func(p int) {
				if _, ok := effective[si][p]; !ok {
					contributes = true
				}
			}
			for _, p := range directPerms[ji] {
				check(p)
			}
			for jj := range reach[ji] {
				for _, p := range directPerms[jj] {
					check(p)
				}
			}
			_ = contributes
			// The edge is useless iff removing it leaves the senior's
			// effective set unchanged. Since effective already includes
			// the edge, recompute without it.
			without := effectiveWithout(h, directPerms, si, ji)
			useless := true
			for p := range effective[si] {
				if _, ok := without[p]; !ok {
					useless = false
					break
				}
			}
			if useless {
				out = append(out, RedundantEdge{
					Senior: h.ds.Role(si),
					Junior: h.ds.Role(ji),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Senior != out[j].Senior {
			return out[i].Senior < out[j].Senior
		}
		return out[i].Junior < out[j].Junior
	})
	return out, nil
}

// effectiveWithout computes the senior's effective permission indices
// with one direct edge removed.
func effectiveWithout(h *Hierarchy, directPerms [][]int, senior, skipJunior int) map[int]struct{} {
	set := make(map[int]struct{}, len(directPerms[senior]))
	for _, p := range directPerms[senior] {
		set[p] = struct{}{}
	}
	// BFS over the hierarchy skipping the one edge.
	var stack []int
	seen := make(map[int]bool)
	for j := range h.juniors[senior] {
		if j == skipJunior {
			continue
		}
		stack = append(stack, j)
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[r] {
			continue
		}
		seen[r] = true
		for _, p := range directPerms[r] {
			set[p] = struct{}{}
		}
		for j := range h.juniors[r] {
			stack = append(stack, j)
		}
	}
	return set
}
