package hierarchy

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rbac"
)

// Edge is one inheritance relation in the sidecar file format.
type Edge struct {
	Senior rbac.RoleID `json:"senior"`
	Junior rbac.RoleID `json:"junior"`
}

// edgesFile is the JSON sidecar: a dataset file stays hierarchy-free
// and a second document carries the inheritance edges.
type edgesFile struct {
	Inheritance []Edge `json:"inheritance"`
}

// ReadEdges parses a sidecar document and applies its edges to a new
// hierarchy over the dataset.
func ReadEdges(d *rbac.Dataset, r io.Reader) (*Hierarchy, error) {
	var in edgesFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("hierarchy: decode edges: %w", err)
	}
	h := New(d)
	for i, e := range in.Inheritance {
		if err := h.AddInheritance(e.Senior, e.Junior); err != nil {
			return nil, fmt.Errorf("hierarchy: edge %d: %w", i, err)
		}
	}
	return h, nil
}

// WriteEdges serialises the hierarchy's edges as a sidecar document
// with deterministic ordering.
func (h *Hierarchy) WriteEdges(w io.Writer) error {
	var out edgesFile
	for _, senior := range h.ds.Roles() {
		juniors, err := h.Juniors(senior)
		if err != nil {
			return err
		}
		for _, j := range juniors {
			out.Inheritance = append(out.Inheritance, Edge{Senior: senior, Junior: j})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("hierarchy: encode edges: %w", err)
	}
	return nil
}
