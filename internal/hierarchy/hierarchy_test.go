package hierarchy

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rbac"
)

// buildChain creates roles r0..r(n-1) with permission p<i> on role i.
func buildChain(t *testing.T, n int) *rbac.Dataset {
	t.Helper()
	d := rbac.NewDataset()
	if err := d.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		role := rbac.RoleID(string(rune('a' + i)))
		if err := d.AddRole(role); err != nil {
			t.Fatal(err)
		}
		perm := rbac.PermissionID(string(rune('A' + i)))
		if err := d.AddPermission(perm); err != nil {
			t.Fatal(err)
		}
		if err := d.AssignPermission(role, perm); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestAddInheritanceValidation(t *testing.T) {
	h := New(buildChain(t, 2))
	if err := h.AddInheritance("ghost", "a"); err == nil {
		t.Fatal("unknown senior accepted")
	}
	if err := h.AddInheritance("a", "ghost"); err == nil {
		t.Fatal("unknown junior accepted")
	}
	if err := h.AddInheritance("a", "a"); err == nil {
		t.Fatal("self-inheritance accepted")
	}
	if err := h.AddInheritance("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInheritance("a", "b"); err != nil {
		t.Fatal("duplicate edge should be a no-op")
	}
	if h.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", h.NumEdges())
	}
	juniors, err := h.Juniors("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(juniors, []rbac.RoleID{"b"}) {
		t.Fatalf("Juniors = %v", juniors)
	}
	if _, err := h.Juniors("ghost"); err == nil {
		t.Fatal("Juniors on unknown role accepted")
	}
}

func TestFlattenChain(t *testing.T) {
	// a -> b -> c: a's flattened permissions are {A, B, C}.
	h := New(buildChain(t, 3))
	if err := h.AddInheritance("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInheritance("b", "c"); err != nil {
		t.Fatal(err)
	}
	flat, err := h.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	perms, err := flat.RolePermissions("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(perms, []rbac.PermissionID{"A", "B", "C"}) {
		t.Fatalf("flattened a = %v", perms)
	}
	perms, _ = flat.RolePermissions("b")
	if !reflect.DeepEqual(perms, []rbac.PermissionID{"B", "C"}) {
		t.Fatalf("flattened b = %v", perms)
	}
	perms, _ = flat.RolePermissions("c")
	if !reflect.DeepEqual(perms, []rbac.PermissionID{"C"}) {
		t.Fatalf("flattened c = %v", perms)
	}
	// The original dataset is untouched.
	orig, _ := h.Dataset().RolePermissions("a")
	if len(orig) != 1 {
		t.Fatalf("original dataset mutated: %v", orig)
	}
}

func TestFlattenedDetection(t *testing.T) {
	// Two seniors inheriting the same junior chain spell the same
	// effective permission set differently; flat detection on the
	// flattened dataset must group them.
	d := rbac.NewDataset()
	if err := d.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []rbac.RoleID{"senior1", "senior2", "base"} {
		if err := d.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddPermission("P"); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPermission("base", "P"); err != nil {
		t.Fatal(err)
	}
	// senior1 holds P directly; senior2 only via inheritance.
	if err := d.AssignPermission("senior1", "P"); err != nil {
		t.Fatal(err)
	}
	h := New(d)
	if err := h.AddInheritance("senior2", "base"); err != nil {
		t.Fatal(err)
	}
	flat, err := h.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(flat, core.Options{SkipSimilar: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range rep.SamePermissionGroups {
		has := map[rbac.RoleID]bool{}
		for _, r := range g.Roles {
			has[r] = true
		}
		if has["senior1"] && has["senior2"] {
			found = true
		}
	}
	if !found {
		t.Fatalf("flattened detection missed the equivalent seniors: %+v", rep.SamePermissionGroups)
	}
}

func TestRedundantEdges(t *testing.T) {
	// a -> b -> c plus the shortcut a -> c: the shortcut is redundant.
	h := New(buildChain(t, 3))
	for _, e := range [][2]rbac.RoleID{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		if err := h.AddInheritance(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got := h.RedundantEdges()
	want := []RedundantEdge{{Senior: "a", Junior: "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RedundantEdges = %v, want %v", got, want)
	}
}

func TestNoRedundantEdgesInTree(t *testing.T) {
	h := New(buildChain(t, 4))
	for _, e := range [][2]rbac.RoleID{{"a", "b"}, {"a", "c"}, {"b", "d"}} {
		if err := h.AddInheritance(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.RedundantEdges(); len(got) != 0 {
		t.Fatalf("RedundantEdges = %v, want none", got)
	}
}

func TestCycles(t *testing.T) {
	h := New(buildChain(t, 4))
	for _, e := range [][2]rbac.RoleID{{"a", "b"}, {"b", "c"}, {"c", "a"}} {
		if err := h.AddInheritance(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got := h.Cycles()
	want := []rbac.RoleID{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Cycles = %v, want %v", got, want)
	}
	// d is outside the cycle.
	for _, r := range got {
		if r == "d" {
			t.Fatal("acyclic role reported in cycle")
		}
	}
}

func TestNoCyclesInDAG(t *testing.T) {
	h := New(buildChain(t, 3))
	if err := h.AddInheritance("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInheritance("a", "c"); err != nil {
		t.Fatal(err)
	}
	if got := h.Cycles(); len(got) != 0 {
		t.Fatalf("Cycles = %v in a DAG", got)
	}
}

func TestCyclicFlattenStillTerminates(t *testing.T) {
	h := New(buildChain(t, 2))
	if err := h.AddInheritance("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInheritance("b", "a"); err != nil {
		t.Fatal(err)
	}
	flat, err := h.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	// Both cycle members reach both permissions.
	for _, r := range []rbac.RoleID{"a", "b"} {
		perms, err := flat.RolePermissions(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(perms) != 2 {
			t.Fatalf("cyclic flatten: %s has %v", r, perms)
		}
	}
}

func TestSelfContainedSeniors(t *testing.T) {
	// senior directly holds A and B; junior only grants A: the edge
	// contributes nothing.
	d := rbac.NewDataset()
	if err := d.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []rbac.RoleID{"senior", "junior", "useful"} {
		if err := d.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []rbac.PermissionID{"A", "B", "C"} {
		if err := d.AddPermission(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []rbac.PermissionID{"A", "B"} {
		if err := d.AssignPermission("senior", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AssignPermission("junior", "A"); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPermission("useful", "C"); err != nil {
		t.Fatal(err)
	}
	h := New(d)
	if err := h.AddInheritance("senior", "junior"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInheritance("senior", "useful"); err != nil {
		t.Fatal(err)
	}
	got, err := h.SelfContainedSeniors()
	if err != nil {
		t.Fatal(err)
	}
	want := []RedundantEdge{{Senior: "senior", Junior: "junior"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SelfContainedSeniors = %v, want %v", got, want)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	d := buildChain(t, 3)
	h := New(d)
	if err := h.AddInheritance("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInheritance("b", "c"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteEdges(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdges(d, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 2 {
		t.Fatalf("edges after round trip = %d", back.NumEdges())
	}
	juniors, err := back.Juniors("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(juniors) != 1 || juniors[0] != "b" {
		t.Fatalf("juniors = %v", juniors)
	}
}

func TestReadEdgesErrors(t *testing.T) {
	d := buildChain(t, 2)
	if _, err := ReadEdges(d, strings.NewReader("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	ghost := `{"inheritance":[{"senior":"a","junior":"ghost"}]}`
	if _, err := ReadEdges(d, strings.NewReader(ghost)); err == nil {
		t.Fatal("ghost junior accepted")
	}
}
