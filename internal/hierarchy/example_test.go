package hierarchy_test

import (
	"fmt"

	"repro/internal/hierarchy"
	"repro/internal/rbac"
)

// Example builds a three-level hierarchy with a redundant shortcut and
// flattens it for the flat detection framework.
func Example() {
	d := rbac.NewDataset()
	_ = d.AddUser("u")
	for _, r := range []rbac.RoleID{"admin", "editor", "viewer"} {
		_ = d.AddRole(r)
	}
	for _, p := range []rbac.PermissionID{"manage", "write", "read"} {
		_ = d.AddPermission(p)
	}
	_ = d.AssignPermission("admin", "manage")
	_ = d.AssignPermission("editor", "write")
	_ = d.AssignPermission("viewer", "read")

	h := hierarchy.New(d)
	_ = h.AddInheritance("admin", "editor")
	_ = h.AddInheritance("editor", "viewer")
	_ = h.AddInheritance("admin", "viewer") // implied by the chain

	fmt.Println("redundant:", h.RedundantEdges())

	flat, _ := h.Flatten()
	perms, _ := flat.RolePermissions("admin")
	fmt.Println("admin flattened:", perms)
	// Output:
	// redundant: [{admin viewer}]
	// admin flattened: [manage read write]
}
