package query_test

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/rbac"
)

// Example answers the audit questions from the paper's Figure 1: who
// can use P05, what can U01 do, and why.
func Example() {
	x := query.NewIndex(rbac.Figure1())

	users, _ := x.UsersWith("P05")
	fmt.Println("users with P05:", users)

	perms, _ := x.PermissionsOf("U01")
	fmt.Println("U01 permissions:", perms)

	grants, _ := x.Why("U01", "P05")
	for _, g := range grants {
		fmt.Println("U01 holds P05 via", g.Via)
	}
	// Output:
	// users with P05: [U01 U02 U04]
	// U01 permissions: [P05 P06]
	// U01 holds P05 via R04
}
