// Package query answers access-review questions over an RBAC dataset:
// who holds a permission, through which roles, and what a user can do.
//
// The paper motivates inefficiency cleanup with auditing pain — "making
// the management and, critically, auditing those roles a complex and
// prone-to-error process". These are the queries an auditor actually
// runs; they are served from inverted indexes built once per snapshot,
// so each query costs time proportional to its answer.
package query

import (
	"fmt"
	"sort"

	"repro/internal/rbac"
)

// Index is an immutable query index over one dataset snapshot.
type Index struct {
	ds *rbac.Dataset
	// userRoles[u] lists role indices containing user u.
	userRoles [][]int
	// permRoles[p] lists role indices granting permission p.
	permRoles [][]int
}

// NewIndex snapshots the dataset and builds the inverted indexes.
func NewIndex(d *rbac.Dataset) *Index {
	ds := d.Clone()
	idx := &Index{
		ds:        ds,
		userRoles: make([][]int, ds.NumUsers()),
		permRoles: make([][]int, ds.NumPermissions()),
	}
	for ri := 0; ri < ds.NumRoles(); ri++ {
		ds.UserRow(ri).ForEach(func(u int) bool {
			idx.userRoles[u] = append(idx.userRoles[u], ri)
			return true
		})
		ds.PermRow(ri).ForEach(func(p int) bool {
			idx.permRoles[p] = append(idx.permRoles[p], ri)
			return true
		})
	}
	return idx
}

// RolesOf returns the roles a user is assigned to, sorted by id.
func (x *Index) RolesOf(user rbac.UserID) ([]rbac.RoleID, error) {
	ui, ok := x.ds.UserIndex(user)
	if !ok {
		return nil, fmt.Errorf("query: %w: %q", rbac.ErrUnknownUser, user)
	}
	out := make([]rbac.RoleID, 0, len(x.userRoles[ui]))
	for _, ri := range x.userRoles[ui] {
		out = append(out, x.ds.Role(ri))
	}
	sortRoles(out)
	return out, nil
}

// RolesGranting returns the roles that grant a permission, sorted.
func (x *Index) RolesGranting(perm rbac.PermissionID) ([]rbac.RoleID, error) {
	pi, ok := x.ds.PermissionIndex(perm)
	if !ok {
		return nil, fmt.Errorf("query: %w: %q", rbac.ErrUnknownPermission, perm)
	}
	out := make([]rbac.RoleID, 0, len(x.permRoles[pi]))
	for _, ri := range x.permRoles[pi] {
		out = append(out, x.ds.Role(ri))
	}
	sortRoles(out)
	return out, nil
}

// PermissionsOf returns a user's effective permissions, sorted.
func (x *Index) PermissionsOf(user rbac.UserID) ([]rbac.PermissionID, error) {
	ui, ok := x.ds.UserIndex(user)
	if !ok {
		return nil, fmt.Errorf("query: %w: %q", rbac.ErrUnknownUser, user)
	}
	seen := make(map[int]struct{})
	for _, ri := range x.userRoles[ui] {
		x.ds.PermRow(ri).ForEach(func(p int) bool {
			seen[p] = struct{}{}
			return true
		})
	}
	out := make([]rbac.PermissionID, 0, len(seen))
	for p := range seen {
		out = append(out, x.ds.Permission(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// UsersWith returns the users that effectively hold a permission,
// sorted.
func (x *Index) UsersWith(perm rbac.PermissionID) ([]rbac.UserID, error) {
	pi, ok := x.ds.PermissionIndex(perm)
	if !ok {
		return nil, fmt.Errorf("query: %w: %q", rbac.ErrUnknownPermission, perm)
	}
	seen := make(map[int]struct{})
	for _, ri := range x.permRoles[pi] {
		x.ds.UserRow(ri).ForEach(func(u int) bool {
			seen[u] = struct{}{}
			return true
		})
	}
	out := make([]rbac.UserID, 0, len(seen))
	for u := range seen {
		out = append(out, x.ds.User(u))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Grant explains one way a user holds a permission.
type Grant struct {
	// Via is the role that connects the user to the permission.
	Via rbac.RoleID `json:"via"`
}

// Why returns every role through which the user holds the permission —
// the audit trail for one access decision. An empty slice means the
// user does not hold the permission.
func (x *Index) Why(user rbac.UserID, perm rbac.PermissionID) ([]Grant, error) {
	ui, ok := x.ds.UserIndex(user)
	if !ok {
		return nil, fmt.Errorf("query: %w: %q", rbac.ErrUnknownUser, user)
	}
	pi, ok := x.ds.PermissionIndex(perm)
	if !ok {
		return nil, fmt.Errorf("query: %w: %q", rbac.ErrUnknownPermission, perm)
	}
	userSet := make(map[int]struct{}, len(x.userRoles[ui]))
	for _, ri := range x.userRoles[ui] {
		userSet[ri] = struct{}{}
	}
	var out []Grant
	for _, ri := range x.permRoles[pi] {
		if _, ok := userSet[ri]; ok {
			out = append(out, Grant{Via: x.ds.Role(ri)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Via < out[j].Via })
	return out, nil
}

// HasAccess reports whether the user effectively holds the permission.
func (x *Index) HasAccess(user rbac.UserID, perm rbac.PermissionID) (bool, error) {
	grants, err := x.Why(user, perm)
	if err != nil {
		return false, err
	}
	return len(grants) > 0, nil
}

// RedundantGrants finds user-permission pairs granted through more than
// one role — every extra path is one more thing an auditor must reason
// about, and consolidating the duplicate/similar roles behind them is
// exactly what the detection framework proposes. Results are sorted by
// user, then permission.
func (x *Index) RedundantGrants() []RedundantGrant {
	var out []RedundantGrant
	for ui := 0; ui < x.ds.NumUsers(); ui++ {
		// Count grant paths per permission for this user.
		paths := make(map[int]int)
		for _, ri := range x.userRoles[ui] {
			x.ds.PermRow(ri).ForEach(func(p int) bool {
				paths[p]++
				return true
			})
		}
		perms := make([]int, 0, len(paths))
		for p, n := range paths {
			if n >= 2 {
				perms = append(perms, p)
			}
		}
		sort.Ints(perms)
		for _, p := range perms {
			out = append(out, RedundantGrant{
				User:       x.ds.User(ui),
				Permission: x.ds.Permission(p),
				Paths:      paths[p],
			})
		}
	}
	return out
}

// RedundantGrant is a user-permission pair reachable through >= 2 roles.
type RedundantGrant struct {
	User       rbac.UserID       `json:"user"`
	Permission rbac.PermissionID `json:"permission"`
	Paths      int               `json:"paths"`
}

func sortRoles(roles []rbac.RoleID) {
	sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })
}
