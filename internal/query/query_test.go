package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rbac"
)

func fig1Index(t *testing.T) *Index {
	t.Helper()
	return NewIndex(rbac.Figure1())
}

func TestRolesOf(t *testing.T) {
	x := fig1Index(t)
	roles, err := x.RolesOf("U01")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(roles, []rbac.RoleID{"R02", "R04"}) {
		t.Fatalf("RolesOf(U01) = %v", roles)
	}
	if _, err := x.RolesOf("ghost"); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestRolesGranting(t *testing.T) {
	x := fig1Index(t)
	roles, err := x.RolesGranting("P05")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(roles, []rbac.RoleID{"R04", "R05"}) {
		t.Fatalf("RolesGranting(P05) = %v", roles)
	}
	// Standalone permission has no granting roles.
	roles, err = x.RolesGranting("P01")
	if err != nil {
		t.Fatal(err)
	}
	if len(roles) != 0 {
		t.Fatalf("RolesGranting(P01) = %v", roles)
	}
	if _, err := x.RolesGranting("ghost"); err == nil {
		t.Fatal("unknown permission accepted")
	}
}

func TestPermissionsOf(t *testing.T) {
	x := fig1Index(t)
	perms, err := x.PermissionsOf("U01")
	if err != nil {
		t.Fatal(err)
	}
	// U01 is in R02 (no perms) and R04 (P05, P06).
	if !reflect.DeepEqual(perms, []rbac.PermissionID{"P05", "P06"}) {
		t.Fatalf("PermissionsOf(U01) = %v", perms)
	}
	if _, err := x.PermissionsOf("ghost"); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestUsersWith(t *testing.T) {
	x := fig1Index(t)
	users, err := x.UsersWith("P05")
	if err != nil {
		t.Fatal(err)
	}
	// P05 via R04 {U01,U02} and R05 {U04}.
	if !reflect.DeepEqual(users, []rbac.UserID{"U01", "U02", "U04"}) {
		t.Fatalf("UsersWith(P05) = %v", users)
	}
	if _, err := x.UsersWith("ghost"); err == nil {
		t.Fatal("unknown permission accepted")
	}
}

func TestWhyAndHasAccess(t *testing.T) {
	x := fig1Index(t)
	grants, err := x.Why("U01", "P05")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(grants, []Grant{{Via: "R04"}}) {
		t.Fatalf("Why = %v", grants)
	}
	ok, err := x.HasAccess("U01", "P05")
	if err != nil || !ok {
		t.Fatalf("HasAccess = (%v, %v)", ok, err)
	}
	ok, err = x.HasAccess("U03", "P05")
	if err != nil || ok {
		t.Fatalf("HasAccess(U03, P05) = (%v, %v)", ok, err)
	}
	if _, err := x.Why("ghost", "P05"); err == nil {
		t.Fatal("unknown user accepted")
	}
	if _, err := x.Why("U01", "ghost"); err == nil {
		t.Fatal("unknown permission accepted")
	}
}

func TestRedundantGrants(t *testing.T) {
	// Build a dataset where alice gets "read" through two roles.
	d := rbac.NewDataset()
	for _, u := range []rbac.UserID{"alice", "bob"} {
		if err := d.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddPermission("read"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []rbac.RoleID{"viewer", "editor"} {
		if err := d.AddRole(r); err != nil {
			t.Fatal(err)
		}
		if err := d.AssignPermission(r, "read"); err != nil {
			t.Fatal(err)
		}
		if err := d.AssignUser(r, "alice"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AssignUser("viewer", "bob"); err != nil {
		t.Fatal(err)
	}
	x := NewIndex(d)
	got := x.RedundantGrants()
	want := []RedundantGrant{{User: "alice", Permission: "read", Paths: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RedundantGrants = %v, want %v", got, want)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	d := rbac.Figure1()
	x := NewIndex(d)
	if err := d.RevokeUser("R02", "U01"); err != nil {
		t.Fatal(err)
	}
	roles, err := x.RolesOf("U01")
	if err != nil {
		t.Fatal(err)
	}
	if len(roles) != 2 {
		t.Fatal("index observed later mutation")
	}
}

func TestPropertyQueryConsistency(t *testing.T) {
	// For random datasets: UsersWith(p) contains u iff PermissionsOf(u)
	// contains p iff HasAccess(u, p), and Why is non-empty exactly then.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := rbac.NewDataset()
		nu, np, nr := 2+r.Intn(5), 2+r.Intn(5), 2+r.Intn(6)
		for i := 0; i < nu; i++ {
			_ = d.AddUser(rbac.UserID(rune('a' + i)))
		}
		for i := 0; i < np; i++ {
			_ = d.AddPermission(rbac.PermissionID(rune('A' + i)))
		}
		for i := 0; i < nr; i++ {
			role := rbac.RoleID(rune('r')) + rbac.RoleID(rune('0'+i))
			_ = d.AddRole(role)
			for u := 0; u < nu; u++ {
				if r.Intn(3) == 0 {
					_ = d.AssignUser(role, rbac.UserID(rune('a'+u)))
				}
			}
			for p := 0; p < np; p++ {
				if r.Intn(3) == 0 {
					_ = d.AssignPermission(role, rbac.PermissionID(rune('A'+p)))
				}
			}
		}
		x := NewIndex(d)
		for u := 0; u < nu; u++ {
			user := rbac.UserID(rune('a' + u))
			perms, err := x.PermissionsOf(user)
			if err != nil {
				return false
			}
			permSet := make(map[rbac.PermissionID]bool, len(perms))
			for _, p := range perms {
				permSet[p] = true
			}
			for p := 0; p < np; p++ {
				perm := rbac.PermissionID(rune('A' + p))
				has, err := x.HasAccess(user, perm)
				if err != nil {
					return false
				}
				if has != permSet[perm] {
					return false
				}
				users, err := x.UsersWith(perm)
				if err != nil {
					return false
				}
				inUsers := false
				for _, uu := range users {
					if uu == user {
						inUsers = true
					}
				}
				if inUsers != has {
					return false
				}
				grants, err := x.Why(user, perm)
				if err != nil {
					return false
				}
				if (len(grants) > 0) != has {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
