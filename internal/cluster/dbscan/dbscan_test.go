package dbscan

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/metric"
)

func vecs(rows ...string) []*bitvec.Vector {
	out := make([]*bitvec.Vector, len(rows))
	for i, r := range rows {
		v, err := bitvec.Parse(r)
		if err != nil {
			panic(err)
		}
		out[i] = v
	}
	return out
}

// sortGroups normalises group output for comparison.
func sortGroups(gs [][]int) [][]int {
	for _, g := range gs {
		sort.Ints(g)
	}
	sort.Slice(gs, func(i, j int) bool {
		if len(gs[i]) == 0 || len(gs[j]) == 0 {
			return len(gs[i]) < len(gs[j])
		}
		return gs[i][0] < gs[j][0]
	})
	return gs
}

func TestValidate(t *testing.T) {
	if err := (Config{Eps: -1, MinPts: 2}).Validate(); err == nil {
		t.Error("negative eps accepted")
	}
	if err := (Config{Eps: 0, MinPts: 0}).Validate(); err == nil {
		t.Error("minPts 0 accepted")
	}
	if err := (Config{Eps: 0, MinPts: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	if _, err := Run(nil, Config{Eps: 0, MinPts: 2}); !errors.Is(err, ErrNoPoints) {
		t.Fatalf("err = %v, want ErrNoPoints", err)
	}
	if _, err := RunFloats(nil, Config{Eps: 0, MinPts: 2}); !errors.Is(err, ErrNoPoints) {
		t.Fatalf("err = %v, want ErrNoPoints", err)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	pts := vecs("01")
	if _, err := Run(pts, Config{Eps: -1, MinPts: 2}); err == nil {
		t.Fatal("Run accepted invalid config")
	}
	if _, err := RunFloats([][]float64{{0}}, Config{Eps: 0, MinPts: 0}); err == nil {
		t.Fatal("RunFloats accepted invalid config")
	}
}

func TestExactDuplicates(t *testing.T) {
	// Rows 0 and 2 identical, rows 1 and 3 identical, row 4 unique.
	pts := vecs(
		"1100",
		"0011",
		"1100",
		"0011",
		"1000",
	)
	res, err := Run(pts, Config{Eps: 0, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", res.NumClusters)
	}
	if res.Labels[4] != Noise {
		t.Fatalf("unique row labelled %d, want Noise", res.Labels[4])
	}
	if res.Labels[0] != res.Labels[2] || res.Labels[1] != res.Labels[3] {
		t.Fatalf("duplicate rows not co-clustered: %v", res.Labels)
	}
	if res.Labels[0] == res.Labels[1] {
		t.Fatalf("distinct groups merged: %v", res.Labels)
	}
	got := sortGroups(res.Groups())
	want := [][]int{{0, 2}, {1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Groups = %v, want %v", got, want)
	}
}

func TestEpsilonToleranceForExact(t *testing.T) {
	// The paper adds a small epsilon to eps=0 for float-comparison
	// robustness; identical points are still the only ones joined.
	pts := vecs("110", "110", "111")
	res, err := Run(pts, Config{Eps: 1e-9, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 || res.Labels[2] != Noise {
		t.Fatalf("labels = %v, want rows 0,1 grouped and 2 noise", res.Labels)
	}
}

func TestSimilarWithinHammingOne(t *testing.T) {
	// Rows 0,1 differ by one bit; row 2 differs from both by >= 2.
	pts := vecs(
		"1100",
		"1101",
		"0011",
	)
	res, err := Run(pts, Config{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[0] == Noise {
		t.Fatalf("similar rows not grouped: %v", res.Labels)
	}
	if res.Labels[2] != Noise {
		t.Fatalf("distant row grouped: %v", res.Labels)
	}
}

func TestChainingBehaviour(t *testing.T) {
	// DBSCAN is transitive through core points: 000, 001, 011 chain with
	// eps=1 even though Hamming(000,011)=2. This documents the density
	// semantics the exact baseline inherits.
	pts := vecs("000", "001", "011")
	res, err := Run(pts, Config{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1 (chained)", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != 0 {
			t.Fatalf("point %d labelled %d, want 0", i, l)
		}
	}
}

func TestMinPtsAboveTwo(t *testing.T) {
	// With minPts=3, a pair of duplicates is no longer a cluster.
	pts := vecs("11", "11", "00")
	res, err := Run(pts, Config{Eps: 0, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Fatalf("NumClusters = %d, want 0", res.NumClusters)
	}
	for _, l := range res.Labels {
		if l != Noise {
			t.Fatalf("labels = %v, want all noise", res.Labels)
		}
	}
}

func TestAllIdentical(t *testing.T) {
	pts := vecs("101", "101", "101", "101")
	res, err := Run(pts, Config{Eps: 0, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	if got := res.Groups(); len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("Groups = %v", got)
	}
}

func TestSinglePoint(t *testing.T) {
	res, err := Run(vecs("1"), Config{Eps: 0, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || res.Labels[0] != Noise {
		t.Fatalf("single point: labels=%v clusters=%d", res.Labels, res.NumClusters)
	}
}

func TestDefaultMetricIsHamming(t *testing.T) {
	// With the zero-value metric the config must behave like Hamming.
	pts := vecs("1100", "1101")
	a, err := Run(pts, Config{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pts, Config{Eps: 1, MinPts: 2, Metric: metric.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Labels, b.Labels) {
		t.Fatalf("default metric labels %v != hamming labels %v", a.Labels, b.Labels)
	}
}

func TestRunFloatsMatchesRunOnBinary(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		d := 1 + r.Intn(16)
		pts := make([]*bitvec.Vector, n)
		fpts := make([][]float64, n)
		for i := range pts {
			v := bitvec.New(d)
			for j := 0; j < d; j++ {
				if r.Intn(2) == 1 {
					v.Set(j)
				}
			}
			pts[i] = v
			fpts[i] = v.Floats()
		}
		eps := float64(r.Intn(3))
		cfg := Config{Eps: eps, MinPts: 2, Metric: metric.Hamming}
		a, err := Run(pts, cfg)
		if err != nil {
			return false
		}
		b, err := RunFloats(fpts, cfg)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a.Labels, b.Labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceDuplicateGroups groups indices by exact vector equality and
// keeps groups of size >= 2 — the ground truth for eps=0 clustering.
func bruteForceDuplicateGroups(pts []*bitvec.Vector) [][]int {
	byKey := map[string][]int{}
	for i, p := range pts {
		byKey[p.String()] = append(byKey[p.String()], i)
	}
	var out [][]int
	for _, g := range byKey {
		if len(g) >= 2 {
			out = append(out, g)
		}
	}
	return sortGroups(out)
}

func TestPropertyEpsZeroEqualsDuplicateGroups(t *testing.T) {
	// Invariant from DESIGN.md §7: DBSCAN with eps=0, minPts=2 finds
	// exactly the duplicate-vector groups.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		d := 1 + r.Intn(8) // narrow so duplicates actually occur
		pts := make([]*bitvec.Vector, n)
		for i := range pts {
			v := bitvec.New(d)
			for j := 0; j < d; j++ {
				if r.Intn(2) == 1 {
					v.Set(j)
				}
			}
			pts[i] = v
		}
		res, err := Run(pts, Config{Eps: 0, MinPts: 2})
		if err != nil {
			return false
		}
		got := sortGroups(res.Groups())
		want := bruteForceDuplicateGroups(pts)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLabelsWellFormed(t *testing.T) {
	// Labels are exactly {Noise} ∪ [0, NumClusters), every cluster id is
	// used, and every non-noise cluster has >= 2 members when minPts=2.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		d := 2 + r.Intn(10)
		pts := make([]*bitvec.Vector, n)
		for i := range pts {
			v := bitvec.New(d)
			for j := 0; j < d; j++ {
				if r.Intn(2) == 1 {
					v.Set(j)
				}
			}
			pts[i] = v
		}
		res, err := Run(pts, Config{Eps: 1, MinPts: 2})
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for _, l := range res.Labels {
			if l != Noise && (l < 0 || l >= res.NumClusters) {
				return false
			}
			seen[l]++
		}
		for c := 0; c < res.NumClusters; c++ {
			if seen[c] < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
