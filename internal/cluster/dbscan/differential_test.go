package dbscan_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cluster/dbscan"
	"repro/internal/metric"
	"repro/internal/testkit"
)

// TestAgainstOracle: DBSCAN with minPts=2 over the Hamming metric is an
// exact method — its clusters are precisely the connected components of
// the "distance <= eps" graph with at least two members, which is the
// oracle's partition. The full sweep lives in internal/testkit; this
// guard makes a dbscan-only change fail in this package's own tests.
func TestAgainstOracle(t *testing.T) {
	ctx := context.Background()
	b := testkit.BackendByName("dbscan")
	if b == nil {
		t.Fatal("dbscan backend missing from the testkit registry")
	}
	corpora := testkit.Corpora(false)
	for _, c := range corpora[:8] {
		failures, err := testkit.RunCorpus(ctx, c, []testkit.Backend{*b})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range failures {
			t.Error(f.Error())
		}
	}
}

// TestRunFloatsRaggedInput: the float path is the one place where
// untrusted input could reach the metric functions with mismatched
// lengths; RunFloats must reject ragged matrices with a typed error
// instead of panicking mid-cluster (see metric.CheckLens).
func TestRunFloatsRaggedInput(t *testing.T) {
	points := [][]float64{
		{0, 1, 0},
		{1, 0}, // ragged
		{0, 0, 1},
	}
	_, err := dbscan.RunFloats(points, dbscan.Config{Eps: 1, MinPts: 2})
	if err == nil {
		t.Fatal("ragged input accepted")
	}
	if !errors.Is(err, metric.ErrLengthMismatch) {
		t.Errorf("error %v does not wrap metric.ErrLengthMismatch", err)
	}
}
