package dbscan

import (
	"context"
	"math"

	"repro/internal/bitmat"
	"repro/internal/ctxcheck"
	"repro/internal/parallel"
)

// matBlock is the number of candidate rows a region-query scans
// between context polls on the arena path. Distances here are pruned
// norm checks plus occasional popcounts, so a block is a few
// microseconds of work; combined with the checker stride the
// cancellation latency stays well under a millisecond.
const matBlock = 4096

// kmaxFor converts the float Eps contract into the integer distance
// bound the bit-matrix kernels use. Hamming distances over width-cols
// rows are integers in [0, cols], so d <= eps is exactly d <= floor(eps)
// for any non-negative eps — the +1e-9 the callers add for
// scikit-learn float parity vanishes here by construction.
func kmaxFor(eps float64, cols int) int {
	if eps >= float64(cols) {
		return cols
	}
	return int(math.Floor(eps))
}

// RunMat clusters the rows of a prebuilt bit-matrix arena with the
// Hamming metric. It is Run's fast path: region queries run against
// contiguous cache-line-padded rows and are preceded by the
// triangle-inequality norm prune ||R_p|-|R_q|| > eps => skip, so most
// candidate pairs never reach an XOR+popcount.
func RunMat(m *bitmat.Matrix, cfg Config) (*Result, error) {
	return RunMatContext(context.Background(), m, cfg)
}

// RunMatContext is RunMat with cooperative cancellation. Labels are
// bit-identical to RunContext on the same rows: the integer distance
// bound preserves the d <= Eps predicate exactly, and the visit order
// is unchanged.
func RunMatContext(ctx context.Context, m *bitmat.Matrix, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := m.Rows()
	if n == 0 {
		return nil, ErrNoPoints
	}
	chk := ctxcheck.New(ctx, 16)
	if err := chk.Err(); err != nil {
		return nil, err
	}
	kmax := kmaxFor(cfg.Eps, m.Cols())

	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)

	// regionQuery appends every point within kmax of p (including p)
	// onto dst, scanning the arena one block per tick.
	regionQuery := func(p int, dst []int32) ([]int32, error) {
		for lo := 0; lo < n; lo += matBlock {
			hi := min(lo+matBlock, n)
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			dst = m.NeighborsAppend(dst, p, lo, hi, kmax)
		}
		return dst, nil
	}

	// Same visit order as cluster(): outer scan in index order,
	// breadth-first expansion, border points adopting the first cluster
	// that reaches them. The neighbour list is one reused buffer; a
	// non-core point's freshly queried neighbours are truncated away
	// again, which leaves exactly the appends cluster() performs.
	cluster := 0
	var neighbours []int32
	var err error
	for p := 0; p < n; p++ {
		if visited[p] {
			continue
		}
		visited[p] = true
		neighbours, err = regionQuery(p, neighbours[:0])
		if err != nil {
			return nil, err
		}
		if len(neighbours) < cfg.MinPts {
			continue // stays noise unless a later cluster reaches it
		}
		labels[p] = cluster
		for qi := 0; qi < len(neighbours); qi++ {
			q := int(neighbours[qi])
			if labels[q] == Noise {
				labels[q] = cluster // border or reclaimed-noise point
			}
			if visited[q] {
				continue
			}
			visited[q] = true
			start := len(neighbours)
			neighbours, err = regionQuery(q, neighbours)
			if err != nil {
				return nil, err
			}
			if len(neighbours)-start < cfg.MinPts {
				neighbours = neighbours[:start] // q is not core: expand nothing
			}
		}
		cluster++
	}

	return &Result{Labels: labels, NumClusters: cluster}, nil
}

// RunMatParallel is RunParallel over a prebuilt arena: the
// neighbourhood precompute fans out over workers and runs through the
// tiled, norm-pruned block kernels.
func RunMatParallel(m *bitmat.Matrix, cfg Config, workers int) (*Result, error) {
	return RunMatParallelContext(context.Background(), m, cfg, workers)
}

// RunMatParallelContext is RunMatParallel with cooperative
// cancellation. Labels are identical to the serial arena run (and so to
// the legacy vector paths).
func RunMatParallelContext(ctx context.Context, m *bitmat.Matrix, cfg Config, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := m.Rows()
	if n == 0 {
		return nil, ErrNoPoints
	}
	kmax := kmaxFor(cfg.Eps, m.Cols())
	neigh := make([][]int32, n)
	queries := make([]int32, n)
	for i := range queries {
		queries[i] = int32(i)
	}
	chunks := parallel.SplitRange(n, parallel.Workers(workers, n))
	err := parallel.ForEachChunk(ctx, chunks, 16, func(_ int, c parallel.Chunk, chk *ctxcheck.Checker) error {
		// Query blocks of 8 rows against row blocks of matBlock: one
		// tick per tile bounds cancellation latency while NeighborsInto
		// keeps the inner tiling cache-resident.
		for p0 := c.Lo; p0 < c.Hi; p0 += 8 {
			p1 := min(p0+8, c.Hi)
			for rlo := 0; rlo < n; rlo += matBlock {
				rhi := min(rlo+matBlock, n)
				if err := chk.Tick(); err != nil {
					return err
				}
				m.NeighborsInto(neigh[p0:p1], queries[p0:p1], rlo, rhi, kmax)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return propagate(n, cfg, neigh), nil
}
