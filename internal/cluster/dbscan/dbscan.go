// Package dbscan implements Density-Based Spatial Clustering of
// Applications with Noise (Ester et al., KDD 1996) from scratch.
//
// It is the paper's "exact clustering" baseline (§III-C): every role row
// is a point in {0,1}^u space, minPts is fixed to 2 (even two akin roles
// form a group), the metric is Hamming, and eps is 0 (+ a small epsilon
// for float-comparison parity with scikit-learn) for roles sharing the
// *same* users, or the threshold k for roles sharing *similar* users.
//
// The implementation mirrors scikit-learn's fit_predict contract: it
// returns one integer label per input row, with -1 reserved for noise.
// Neighbour search is a brute-force scan, exactly as a generic DBSCAN
// must do for arbitrary metrics — this O(n²) behaviour is the point of
// the baseline, and what the Role Diet algorithm beats.
//
// The *Context entry points observe cancellation between neighbourhood
// scans (every few thousand distance evaluations), so an O(n²) run over
// an organisation-scale matrix aborts promptly when its request is
// cancelled or times out.
package dbscan

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
	"repro/internal/metric"
)

// Noise is the label assigned to points that belong to no cluster,
// matching scikit-learn's -1 convention.
const Noise = -1

// Config carries the DBSCAN parameters.
type Config struct {
	// Eps is the maximum distance between two samples for one to be
	// considered in the neighbourhood of the other. For exact-duplicate
	// detection the paper sets it to 0 plus a small epsilon; Run treats
	// any distance <= Eps as a neighbour.
	Eps float64
	// MinPts is the number of samples in a neighbourhood (including the
	// point itself) for a point to be a core point. The paper fixes it
	// to 2: a pair of akin roles is already a group worth reporting.
	MinPts int
	// Metric is the distance function. Defaults to Hamming when zero,
	// per the paper's choice for binary assignment rows.
	Metric metric.Kind
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Eps < 0 {
		return fmt.Errorf("dbscan: negative eps %v", c.Eps)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("dbscan: minPts %d < 1", c.MinPts)
	}
	return nil
}

// ErrNoPoints is returned when Run is called with an empty dataset.
var ErrNoPoints = errors.New("dbscan: no points")

// Result holds the clustering outcome.
type Result struct {
	// Labels has one entry per input point: a cluster id >= 0, or Noise.
	Labels []int
	// NumClusters is the number of distinct non-noise clusters.
	NumClusters int
}

// Groups converts the label vector into explicit clusters: a slice of
// point-index slices, one per cluster id, ascending. Noise points are
// omitted. This is the "iterate over the label vector to list role
// groups" step from §III-D.
func (r *Result) Groups() [][]int {
	groups := make([][]int, r.NumClusters)
	for i, l := range r.Labels {
		if l >= 0 {
			groups[l] = append(groups[l], i)
		}
	}
	return groups
}

// Run clusters the rows of the given bit-vector dataset.
func Run(points []*bitvec.Vector, cfg Config) (*Result, error) {
	return RunContext(context.Background(), points, cfg)
}

// RunContext is Run with cooperative cancellation: it returns ctx.Err()
// partway through the scan once the context is cancelled, discarding
// the partial labelling.
func RunContext(ctx context.Context, points []*bitvec.Vector, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	kind := cfg.Metric
	if kind == 0 {
		kind = metric.Hamming
	}
	if kind == metric.Hamming {
		// Hamming rows go through the bit-matrix arena: contiguous
		// cache-line-padded storage plus the norm-pruning pre-pass.
		// Labels are bit-identical to the generic scan.
		m, err := bitmat.FromRows(points)
		if err != nil {
			return nil, err
		}
		return RunMatContext(ctx, m, cfg)
	}
	dist := kind.Bits()
	return cluster(ctx, len(points), cfg, func(p, q int) float64 {
		return dist(points[p], points[q])
	})
}

// RunFloats clusters float vectors with the metric's float implementation.
// It exists for parity with the Python baseline, which feeds numpy float
// arrays to scikit-learn; the benchmark harness uses it to quantify the
// bit-packing speedup (ablation in DESIGN.md §6).
func RunFloats(points [][]float64, cfg Config) (*Result, error) {
	return RunFloatsContext(context.Background(), points, cfg)
}

// RunFloatsContext is RunFloats with cooperative cancellation.
//
// Unlike the bit-vector path (whose rows carry their width), a
// [][]float64 can be ragged, and the metric functions panic on
// mismatched lengths by contract. This is the one float entry point
// reachable with untrusted input, so it validates the whole matrix up
// front and returns an error wrapping metric.ErrLengthMismatch instead
// of panicking mid-scan.
func RunFloatsContext(ctx context.Context, points [][]float64, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	for i, p := range points {
		if err := metric.CheckLens(points[0], p); err != nil {
			return nil, fmt.Errorf("dbscan: row %d: %w", i, err)
		}
	}
	kind := cfg.Metric
	if kind == 0 {
		kind = metric.Hamming
	}
	dist := kind.Float()
	return cluster(ctx, len(points), cfg, func(p, q int) float64 {
		return dist(points[p], points[q])
	})
}

// cluster is the classic algorithm over an abstract distance, shared by
// the bit-packed and float paths: visit each unvisited point, compute
// its eps-neighbourhood; if it has at least MinPts members the point is
// a core point seeding a new cluster, which is then expanded
// breadth-first through the neighbourhoods of its core members. Border
// points adopt the first cluster that reaches them; points reached by
// nobody stay noise.
func cluster(ctx context.Context, n int, cfg Config, dist func(p, q int) float64) (*Result, error) {
	chk := ctxcheck.New(ctx, 4096)
	if err := chk.Err(); err != nil {
		return nil, err
	}

	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)

	// regionQuery returns every point within Eps of p, including p. One
	// tick per distance evaluation keeps cancellation latency bounded
	// even when a single neighbourhood scan covers the whole dataset.
	regionQuery := func(p int) ([]int, error) {
		var out []int
		for q := 0; q < n; q++ {
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			if dist(p, q) <= cfg.Eps {
				out = append(out, q)
			}
		}
		return out, nil
	}

	cluster := 0
	for p := 0; p < n; p++ {
		if visited[p] {
			continue
		}
		visited[p] = true
		neighbours, err := regionQuery(p)
		if err != nil {
			return nil, err
		}
		if len(neighbours) < cfg.MinPts {
			continue // stays noise unless a later cluster reaches it
		}
		labels[p] = cluster
		// Expand: seed set grows as new core points are discovered.
		for qi := 0; qi < len(neighbours); qi++ {
			q := neighbours[qi]
			if labels[q] == Noise {
				labels[q] = cluster // border or reclaimed-noise point
			}
			if visited[q] {
				continue
			}
			visited[q] = true
			qNeighbours, err := regionQuery(q)
			if err != nil {
				return nil, err
			}
			if len(qNeighbours) >= cfg.MinPts {
				neighbours = append(neighbours, qNeighbours...)
			}
		}
		cluster++
	}

	return &Result{Labels: labels, NumClusters: cluster}, nil
}
