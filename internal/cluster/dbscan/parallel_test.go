package dbscan

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/metric"
)

func randBits(r *rand.Rand, n, dim int, density float64) []*bitvec.Vector {
	out := make([]*bitvec.Vector, n)
	for i := range out {
		v := bitvec.New(dim)
		for j := 0; j < dim; j++ {
			if r.Float64() < density {
				v.Set(j)
			}
		}
		out[i] = v
	}
	return out
}

// TestRunParallelMatchesSerial asserts label-for-label identity with
// the serial run across random matrices, eps values, worker counts,
// and both the batched Hamming path and the generic metric path.
func TestRunParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randBits(r, 2+r.Intn(80), 1+r.Intn(24), 0.3)
		// Plant duplicates so eps=0 clusters exist.
		for i := 0; i+1 < len(pts); i += 7 {
			pts[i+1] = pts[i].Clone()
		}
		cfg := Config{Eps: float64(r.Intn(3)), MinPts: 2}
		if r.Intn(3) == 0 {
			cfg.Metric = metric.Jaccard
		}
		workers := 1 + r.Intn(8)
		serial, err := Run(pts, cfg)
		if err != nil {
			return false
		}
		par, err := RunParallel(pts, cfg, workers)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(serial, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFloatsParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = make([]float64, 12)
		for j := range pts[i] {
			if r.Float64() < 0.4 {
				pts[i][j] = 1
			}
		}
	}
	for _, cfg := range []Config{
		{Eps: 0, MinPts: 2},
		{Eps: 2, MinPts: 2, Metric: metric.Manhattan},
	} {
		serial, err := RunFloats(pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunFloatsParallel(pts, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("cfg %+v: parallel labels diverge from serial", cfg)
		}
	}
}

func TestRunParallelValidation(t *testing.T) {
	pts := vecs("0101", "0101")
	if _, err := RunParallel(pts, Config{Eps: -1, MinPts: 2}, 2); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := RunParallel(nil, Config{MinPts: 2}, 2); err != ErrNoPoints {
		t.Fatalf("err = %v, want ErrNoPoints", err)
	}
	ragged := [][]float64{{0, 1}, {0, 1, 1}}
	if _, err := RunFloatsParallel(ragged, Config{MinPts: 2}, 2); err == nil {
		t.Fatal("ragged float rows accepted")
	}
}

func TestRunParallelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := randBits(rand.New(rand.NewSource(1)), 64, 16, 0.3)
	if _, err := RunParallelContext(ctx, pts, Config{MinPts: 2}, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
