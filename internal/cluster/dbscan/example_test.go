package dbscan_test

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cluster/dbscan"
)

// Example clusters assignment rows with the paper's exact-baseline
// settings: minPts 2, eps 0 (identical rows only), Hamming metric.
func Example() {
	rows := []*bitvec.Vector{
		bitvec.FromIndices(4, []int{0, 1}),
		bitvec.FromIndices(4, []int{2, 3}),
		bitvec.FromIndices(4, []int{0, 1}), // duplicate of row 0
	}
	res, err := dbscan.Run(rows, dbscan.Config{Eps: 0, MinPts: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("labels:", res.Labels)
	fmt.Println("groups:", res.Groups())
	// Output:
	// labels: [0 -1 0]
	// groups: [[0 2]]
}
