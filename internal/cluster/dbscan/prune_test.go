package dbscan

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/metric"
)

// TestPruneNormBoundary constructs the corpora where the norm bound is
// least forgiving: pairs whose norm gap equals eps exactly. Pruning is
// only allowed for ||a|-|b|| strictly greater than eps — a pair at the
// boundary can still be at distance exactly eps (subset rows), so
// pruning it would drop a true neighbour.
func TestPruneNormBoundary(t *testing.T) {
	const width = 64
	cases := []struct {
		name string
		rows [][]int // set bit positions per row
		eps  float64
		want [][]int // expected groups (ascending members)
	}{
		{
			// b is a superset of a with exactly eps extra bits:
			// ||a|-|b|| == eps and Hamming == eps. Must group.
			name: "subset-at-boundary",
			rows: [][]int{{0, 1}, {0, 1, 2}, {40, 41, 42, 43, 44, 45}},
			eps:  1,
			want: [][]int{{0, 1}},
		},
		{
			// c has the same norm gap 1 from a but is disjoint from it:
			// the norm bound alone would admit it, the popcount must
			// reject it. Only the subset pair groups.
			name: "norm-bound-admits-popcount-rejects",
			rows: [][]int{{0, 1}, {0, 1, 2}, {50, 51, 52}},
			eps:  1,
			want: [][]int{{0, 1}},
		},
		{
			// Chain a ⊂ b ⊂ c with per-step distance 2 == eps; DBSCAN
			// connectivity must pull all three into one cluster even
			// though d(a,c) = 4 > eps.
			name: "boundary-chain",
			rows: [][]int{{0, 1}, {0, 1, 2, 3}, {0, 1, 2, 3, 4, 5}, {60}},
			eps:  2,
			want: [][]int{{0, 1, 2}},
		},
		{
			// eps 0: only identical rows group; equal-norm distinct rows
			// (norm gap 0 == eps) must be rejected by the popcount.
			name: "exact-zero-eps",
			rows: [][]int{{3, 4}, {3, 4}, {5, 6}, {7}},
			eps:  0,
			want: [][]int{{0, 1}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			points := make([]*bitvec.Vector, len(tc.rows))
			for i, cols := range tc.rows {
				points[i] = bitvec.FromIndices(width, cols)
			}
			cfg := Config{Eps: tc.eps, MinPts: 2}
			for name, run := range map[string]func() (*Result, error){
				"serial":   func() (*Result, error) { return Run(points, cfg) },
				"parallel": func() (*Result, error) { return RunParallel(points, cfg, 4) },
			} {
				res, err := run()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got := res.Groups()
				if len(got) != len(tc.want) {
					t.Fatalf("%s: groups = %v, want %v", name, got, tc.want)
				}
				for g := range got {
					if len(got[g]) != len(tc.want[g]) {
						t.Fatalf("%s: groups = %v, want %v", name, got, tc.want)
					}
					for x := range got[g] {
						if got[g][x] != tc.want[g][x] {
							t.Fatalf("%s: groups = %v, want %v", name, got, tc.want)
						}
					}
				}
			}
		})
	}
}

// TestPrunedMatchesUnprunedSweep cross-checks the arena path against
// the legacy unpruned scan over seeded random corpora: Manhattan over
// bit rows is numerically identical to Hamming but routes through the
// generic (no-prune, no-arena) implementation, so any label divergence
// convicts the pruning/tiling fast path. Corpora are clustered so many
// pairs sit at or near the norm boundary.
func TestPrunedMatchesUnprunedSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		n := 40 + rng.Intn(80)
		width := 30 + rng.Intn(200)
		points := make([]*bitvec.Vector, n)
		for i := range points {
			v := bitvec.New(width)
			// Half the rows derive from a small set of templates with
			// few flips, so subsets/supersets at small distances abound.
			if i%2 == 0 || i < 4 {
				for j := 0; j < width; j++ {
					if rng.Float64() < 0.2 {
						v.Set(j)
					}
				}
			} else {
				base := points[rng.Intn(i)]
				for _, j := range base.Indices() {
					v.Set(j)
				}
				for f := rng.Intn(3); f > 0; f-- {
					j := rng.Intn(width)
					v.SetTo(j, !v.Get(j))
				}
			}
			points[i] = v
		}
		for _, eps := range []float64{0, 1, 1 + 1e-9, 2, 3.7, 10} {
			pruned, err := Run(points, Config{Eps: eps, MinPts: 2, Metric: metric.Hamming})
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := Run(points, Config{Eps: eps, MinPts: 2, Metric: metric.Manhattan})
			if err != nil {
				t.Fatal(err)
			}
			if pruned.NumClusters != legacy.NumClusters {
				t.Fatalf("trial %d eps=%v: %d clusters pruned vs %d legacy", trial, eps, pruned.NumClusters, legacy.NumClusters)
			}
			for i := range pruned.Labels {
				if pruned.Labels[i] != legacy.Labels[i] {
					t.Fatalf("trial %d eps=%v: label[%d] = %d pruned vs %d legacy", trial, eps, i, pruned.Labels[i], legacy.Labels[i])
				}
			}
			par, err := RunParallel(points, Config{Eps: eps, MinPts: 2}, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range par.Labels {
				if par.Labels[i] != legacy.Labels[i] {
					t.Fatalf("trial %d eps=%v: parallel label[%d] = %d vs %d legacy", trial, eps, i, par.Labels[i], legacy.Labels[i])
				}
			}
		}
	}
}
