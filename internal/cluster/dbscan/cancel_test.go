package dbscan

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestRunContextAlreadyCanceled(t *testing.T) {
	m, err := gen.Matrix(gen.MatrixParams{Rows: 8, Cols: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, m.Rows, Config{Eps: 0.5, MinPts: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestRunContextCanceledMidRun(t *testing.T) {
	// A workload whose full O(n²) scan takes far longer than the cancel
	// delay, so a nil error would mean the cancellation was ignored.
	m, err := gen.Matrix(gen.MatrixParams{Rows: 2500, Cols: 1024, Density: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(time.Millisecond, cancel)

	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, m.Rows, Config{Eps: 2, MinPts: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return within 30s of cancellation")
	}
}

func TestRunFloatsContextCanceledMidRun(t *testing.T) {
	m, err := gen.Matrix(gen.MatrixParams{Rows: 1200, Cols: 1024, Density: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	floats := make([][]float64, len(m.Rows))
	for i, r := range m.Rows {
		floats[i] = r.Floats()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(time.Millisecond, cancel)

	done := make(chan error, 1)
	go func() {
		_, err := RunFloatsContext(ctx, floats, Config{Eps: 2, MinPts: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunFloatsContext = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunFloatsContext did not return within 30s of cancellation")
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	m, err := gen.Matrix(gen.MatrixParams{Rows: 200, Cols: 64, ClusterProportion: 0.3, MaxClusterSize: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eps: 1e-9, MinPts: 2}
	plain, err := Run(m.Rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunContext(context.Background(), m.Rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumClusters != ctxed.NumClusters {
		t.Fatalf("cluster counts differ: %d vs %d", plain.NumClusters, ctxed.NumClusters)
	}
	for i := range plain.Labels {
		if plain.Labels[i] != ctxed.Labels[i] {
			t.Fatalf("label %d differs: %d vs %d", i, plain.Labels[i], ctxed.Labels[i])
		}
	}
}
