package dbscan

import (
	"context"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
	"repro/internal/metric"
	"repro/internal/parallel"
)

// RunParallel is Run with the region queries fanned out over worker
// goroutines. Labels are identical to the serial version.
//
// The serial algorithm computes every point's eps-neighbourhood
// exactly once (each point is visited once, either by the outer scan
// or during cluster expansion, and queried at that visit), so
// precomputing all n neighbourhoods up front does no extra distance
// work — it just makes the O(n²) part embarrassingly parallel. The
// subsequent label propagation is inherently sequential but O(sum of
// neighbourhood sizes), a small fraction of the distance phase. With
// the default Hamming metric the scan additionally goes through
// bitvec.HammingBatch, evaluating a block of packed rows per call
// instead of one pairwise call each. Workers <= 0 selects GOMAXPROCS.
func RunParallel(points []*bitvec.Vector, cfg Config, workers int) (*Result, error) {
	return RunParallelContext(context.Background(), points, cfg, workers)
}

// RunParallelContext is RunParallel with cooperative cancellation:
// each worker polls the context independently and the run aborts with
// ctx.Err(), discarding partial neighbourhoods.
func RunParallelContext(ctx context.Context, points []*bitvec.Vector, cfg Config, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	kind := cfg.Metric
	if kind == 0 {
		kind = metric.Hamming
	}
	if kind == metric.Hamming {
		// Hamming rows go through the arena kernels: tiled block scans
		// with the norm-pruning pre-pass. Labels are identical.
		m, err := bitmat.FromRows(points)
		if err != nil {
			return nil, err
		}
		return RunMatParallelContext(ctx, m, cfg, workers)
	}
	n := len(points)
	chunks := parallel.SplitRange(n, parallel.Workers(workers, n))
	neigh := make([][]int, n)
	err := parallel.ForEachChunk(ctx, chunks, 4096, func(_ int, c parallel.Chunk, chk *ctxcheck.Checker) error {
		dist := kind.Bits()
		for p := c.Lo; p < c.Hi; p++ {
			out := []int(nil)
			for q := 0; q < n; q++ {
				if err := chk.Tick(); err != nil {
					return err
				}
				if dist(points[p], points[q]) <= cfg.Eps {
					out = append(out, q)
				}
			}
			neigh[p] = out
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return clusterPrecomputed(n, cfg, neigh), nil
}

// RunFloatsParallel is RunFloats with the same parallel neighbourhood
// precompute (minus the bit-packed batch kernel).
func RunFloatsParallel(points [][]float64, cfg Config, workers int) (*Result, error) {
	return RunFloatsParallelContext(context.Background(), points, cfg, workers)
}

// RunFloatsParallelContext is RunFloatsParallel with cooperative
// cancellation. Like RunFloatsContext it validates row widths up front
// instead of panicking mid-scan.
func RunFloatsParallelContext(ctx context.Context, points [][]float64, cfg Config, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	for i, p := range points {
		if err := metric.CheckLens(points[0], p); err != nil {
			return nil, fmt.Errorf("dbscan: row %d: %w", i, err)
		}
	}
	kind := cfg.Metric
	if kind == 0 {
		kind = metric.Hamming
	}
	dist := kind.Float()
	n := len(points)
	chunks := parallel.SplitRange(n, parallel.Workers(workers, n))
	neigh := make([][]int, n)
	err := parallel.ForEachChunk(ctx, chunks, 4096, func(_ int, c parallel.Chunk, chk *ctxcheck.Checker) error {
		for p := c.Lo; p < c.Hi; p++ {
			out := []int(nil)
			for q := 0; q < n; q++ {
				if err := chk.Tick(); err != nil {
					return err
				}
				if dist(points[p], points[q]) <= cfg.Eps {
					out = append(out, q)
				}
			}
			neigh[p] = out
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return clusterPrecomputed(n, cfg, neigh), nil
}

// clusterPrecomputed is the label-propagation half of the classic
// algorithm over already-computed neighbourhoods. It mirrors cluster's
// visit order exactly — same outer scan, same breadth-first expansion,
// same border-point adoption — so the labels match the serial run
// point for point.
func clusterPrecomputed(n int, cfg Config, neigh [][]int) *Result {
	return propagate(n, cfg, neigh)
}

// propagate is clusterPrecomputed generalised over the neighbour id
// type, so the arena path's []int32 neighbourhoods feed the identical
// propagation code the legacy []int path uses.
func propagate[T ~int | ~int32](n int, cfg Config, neigh [][]T) *Result {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)

	cluster := 0
	for p := 0; p < n; p++ {
		if visited[p] {
			continue
		}
		visited[p] = true
		neighbours := neigh[p]
		if len(neighbours) < cfg.MinPts {
			continue // stays noise unless a later cluster reaches it
		}
		labels[p] = cluster
		for qi := 0; qi < len(neighbours); qi++ {
			q := int(neighbours[qi])
			if labels[q] == Noise {
				labels[q] = cluster // border or reclaimed-noise point
			}
			if visited[q] {
				continue
			}
			visited[q] = true
			if qNeighbours := neigh[q]; len(qNeighbours) >= cfg.MinPts {
				neighbours = append(neighbours, qNeighbours...)
			}
		}
		cluster++
	}

	return &Result{Labels: labels, NumClusters: cluster}
}
