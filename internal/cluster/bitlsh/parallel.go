package bitlsh

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
	"repro/internal/parallel"
)

// FindGroupsParallel is FindGroups with the two compute-heavy phases —
// row sketching and candidate verification — fanned out over worker
// goroutines. Groups AND Stats are identical to the serial run for the
// same seed and configuration:
//
//   - sketches depend only on (row, sampled positions), so computing
//     them in parallel and building each table's buckets serially in
//     ascending row order yields the exact buckets the serial pass sees;
//   - the candidate set after cross-table dedup is a set — independent
//     of enumeration order — so CandidatePairs matches;
//   - each verification is an independent exact Hamming check, and
//     union-find components do not depend on union order, so
//     VerifiedPairs and the final groups match too.
//
// Workers <= 0 selects GOMAXPROCS.
func FindGroupsParallel(rows []*bitvec.Vector, threshold int, cfg Config, workers int) (*Result, error) {
	return FindGroupsParallelContext(context.Background(), rows, threshold, cfg, workers)
}

// FindGroupsParallelContext is FindGroupsParallel with cooperative
// cancellation, observed in every phase.
func FindGroupsParallelContext(ctx context.Context, rows []*bitvec.Vector, threshold int, cfg Config, workers int) (*Result, error) {
	if len(rows) == 0 {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if threshold < 0 {
			return nil, fmt.Errorf("bitlsh: negative threshold %d", threshold)
		}
		return &Result{}, nil
	}
	width := rows[0].Len()
	for i, r := range rows {
		if r.Len() != width {
			return nil, fmt.Errorf("bitlsh: row %d has length %d, want %d", i, r.Len(), width)
		}
	}
	m, err := bitmat.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return FindGroupsMatParallelContext(ctx, m, threshold, cfg, workers)
}

// FindGroupsMatParallel is FindGroupsParallel over a prebuilt arena,
// sharing its storage with the caller.
func FindGroupsMatParallel(m *bitmat.Matrix, threshold int, cfg Config, workers int) (*Result, error) {
	return FindGroupsMatParallelContext(context.Background(), m, threshold, cfg, workers)
}

// FindGroupsMatParallelContext is FindGroupsMatParallel with
// cooperative cancellation, observed in every phase.
func FindGroupsMatParallelContext(ctx context.Context, m *bitmat.Matrix, threshold int, cfg Config, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threshold < 0 {
		return nil, fmt.Errorf("bitlsh: negative threshold %d", threshold)
	}
	n := m.Rows()
	if n == 0 {
		return &Result{}, nil
	}
	width := m.Cols()
	cfg = cfg.withDefaults(width, threshold)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	positions := make([][]int, cfg.Tables)
	for t := range positions {
		positions[t] = samplePositions(rng, width, cfg.BitsPerHash)
	}

	// Phase 1 (parallel): sketch every row under every table's sampled
	// positions. sketches[t][i] is written by exactly one worker.
	sketches := make([][]uint64, cfg.Tables)
	for t := range sketches {
		sketches[t] = make([]uint64, n)
	}
	chunks := parallel.SplitRange(n, parallel.Workers(workers, n))
	err := parallel.ForEachChunk(ctx, chunks, 2048, func(_ int, c parallel.Chunk, chk *ctxcheck.Checker) error {
		for i := c.Lo; i < c.Hi; i++ {
			for t, pos := range positions {
				if err := chk.Tick(); err != nil {
					return err
				}
				sketches[t][i] = sketchMat(m, i, pos)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2 (serial): bucket per table in ascending row order and
	// enumerate colliding pairs with cross-table dedup. Map-building is
	// memory-bound; the expensive hashing already happened above.
	chk := ctxcheck.New(ctx, 2048)
	stats := Stats{Tables: cfg.Tables, BitsPerHash: cfg.BitsPerHash}
	seen := make(map[[2]int32]struct{})
	var cands [][2]int32
	for t := range sketches {
		buckets := make(map[uint64][]int32, n)
		for i := 0; i < n; i++ {
			buckets[sketches[t][i]] = append(buckets[sketches[t][i]], int32(i))
		}
		for _, members := range buckets {
			if len(members) < 2 {
				continue
			}
			for ai := 0; ai < len(members); ai++ {
				for bi := ai + 1; bi < len(members); bi++ {
					if err := chk.Tick(); err != nil {
						return nil, err
					}
					key := [2]int32{members[ai], members[bi]}
					if _, dup := seen[key]; dup {
						continue
					}
					seen[key] = struct{}{}
					cands = append(cands, key)
				}
			}
		}
	}
	stats.CandidatePairs = len(cands)

	// Phase 3 (parallel): verify each candidate with the exact
	// distance. verdicts[i] is written by exactly one worker.
	verdicts := make([]bool, len(cands))
	vchunks := parallel.SplitRange(len(cands), parallel.Workers(workers, len(cands)))
	err = parallel.ForEachChunk(ctx, vchunks, 2048, func(_ int, c parallel.Chunk, chk *ctxcheck.Checker) error {
		for i := c.Lo; i < c.Hi; i++ {
			if err := chk.Tick(); err != nil {
				return err
			}
			p := cands[i]
			verdicts[i] = m.HammingAtMost(int(p[0]), int(p[1]), threshold)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 4 (serial): union verified pairs and materialise groups.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, ok := range verdicts {
		if !ok {
			continue
		}
		stats.VerifiedPairs++
		ra, rb := find(int(cands[i][0])), find(int(cands[i][1]))
		if ra != rb {
			parent[rb] = ra
		}
	}

	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		byRoot[find(i)] = append(byRoot[find(i)], i)
	}
	var groups [][]int
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	sortGroups(groups)
	return &Result{Groups: groups, Stats: stats}, nil
}
