package bitlsh

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestFindGroupsParallelMatchesSerial asserts the parallel run
// reproduces the serial one exactly — Groups and Stats both — across
// random matrices, thresholds, worker counts, and configs.
func TestFindGroupsParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(80), 8+r.Intn(56), 0.3)
		for i := 0; i+1 < len(rows); i += 5 {
			rows[i+1] = rows[i].Clone()
		}
		threshold := r.Intn(3)
		cfg := Config{Tables: 1 + r.Intn(8), Seed: 1 + r.Int63n(100)}
		workers := 1 + r.Intn(8)
		serial, err := FindGroups(rows, threshold, cfg)
		if err != nil {
			return false
		}
		par, err := FindGroupsParallel(rows, threshold, cfg, workers)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(serial, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFindGroupsParallelValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rows := randRows(r, 4, 16, 0.5)
	if _, err := FindGroupsParallel(rows, -1, Config{}, 2); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := FindGroupsParallel(rows, 1, Config{Tables: -1}, 2); err == nil {
		t.Fatal("negative tables accepted")
	}
	ragged := append(randRows(r, 1, 16, 0.5), randRows(r, 1, 17, 0.5)...)
	if _, err := FindGroupsParallel(ragged, 1, Config{}, 2); err == nil {
		t.Fatal("ragged rows accepted")
	}
	res, err := FindGroupsParallel(nil, 0, Config{}, 2)
	if err != nil || len(res.Groups) != 0 {
		t.Fatalf("empty input: res=%v err=%v", res, err)
	}
}

func TestFindGroupsParallelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows := randRows(rand.New(rand.NewSource(2)), 64, 64, 0.3)
	if _, err := FindGroupsParallelContext(ctx, rows, 1, Config{}, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
