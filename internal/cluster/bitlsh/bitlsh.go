// Package bitlsh implements bit-sampling locality-sensitive hashing
// for Hamming distance — a second approximate baseline alongside HNSW.
//
// The paper's approximate method comes from the datasketch library,
// whose core primitive is LSH; bit sampling (Indyk & Motwani, 1998) is
// the canonical LSH family for Hamming space and a natural fit for the
// 0/1 assignment rows: a hash function samples b fixed bit positions,
// so two rows at Hamming distance d over width w collide in one table
// with probability (1 − d/w)ᵇ. With L independent tables the recall for
// close pairs approaches 1 while far pairs rarely collide.
//
// For the exact-duplicate case (threshold 0) every table maps identical
// rows to identical buckets, so recall is 1 and the structure behaves
// like a salted hash index. For threshold k ≥ 1 recall is probabilistic
// and tunable via Tables/BitsPerHash; every candidate pair is verified
// with the true Hamming distance before it can join a group, so the
// method never reports a false pair — it can only miss, exactly like
// the paper's HNSW baseline.
package bitlsh

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
)

// Config tunes the index.
type Config struct {
	// Tables is the number of independent hash tables L; defaults to 8.
	Tables int
	// BitsPerHash is the number of sampled bit positions b per table;
	// defaults to a width-dependent value chosen so an eligible pair
	// (distance <= threshold) collides with high probability.
	BitsPerHash int
	// Seed drives the position sampling; the zero value uses seed 1.
	Seed int64
}

func (c Config) withDefaults(width, threshold int) Config {
	if c.Tables <= 0 {
		c.Tables = 8
	}
	if c.BitsPerHash <= 0 {
		c.BitsPerHash = defaultBits(width, threshold)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// defaultBits picks b so that a pair at exactly the threshold distance
// keeps a per-table collision probability of about 0.3, which with the
// default 8 tables yields overall recall around 0.94: positions are
// sampled with replacement, so p1 = (1-k/w)^b and b = ln(0.3)/ln(1-k/w).
// b is clamped to [8, 1024] to bound hashing cost on very wide rows.
func defaultBits(width, threshold int) int {
	if threshold <= 0 || width == 0 {
		// Exact case: identical rows collide under any sampling; 64
		// positions keep spurious bucket collisions negligible.
		if width < 64 {
			return width
		}
		return 64
	}
	p := 1 - float64(threshold)/float64(width)
	if p <= 0 {
		return 8
	}
	b := int(math.Log(0.3) / math.Log(p))
	if b < 8 {
		b = 8
	}
	if b > 1024 {
		b = 1024
	}
	return b
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tables < 0 || c.BitsPerHash < 0 {
		return fmt.Errorf("bitlsh: negative parameter (tables=%d bits=%d)", c.Tables, c.BitsPerHash)
	}
	return nil
}

// Stats reports the work an LSH run performed.
type Stats struct {
	// CandidatePairs is the number of pairs that collided in at least
	// one table and were verified with the exact distance.
	CandidatePairs int
	// VerifiedPairs is how many of those passed the threshold.
	VerifiedPairs int
	// Tables and BitsPerHash echo the effective parameters.
	Tables, BitsPerHash int
}

// Result is the grouping outcome.
type Result struct {
	// Groups lists connected components of verified close pairs,
	// members ascending, groups ordered by smallest member, size >= 2.
	Groups [][]int
	Stats  Stats
}

// FindGroups groups rows whose Hamming distance chains within the
// threshold, using bit-sampling LSH for candidate generation.
func FindGroups(rows []*bitvec.Vector, threshold int, cfg Config) (*Result, error) {
	return FindGroupsContext(context.Background(), rows, threshold, cfg)
}

// FindGroupsContext is FindGroups with cooperative cancellation,
// observed every few thousand row hashes / candidate verifications.
func FindGroupsContext(ctx context.Context, rows []*bitvec.Vector, threshold int, cfg Config) (*Result, error) {
	if len(rows) == 0 {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if threshold < 0 {
			return nil, fmt.Errorf("bitlsh: negative threshold %d", threshold)
		}
		return &Result{}, nil
	}
	width := rows[0].Len()
	for i, r := range rows {
		if r.Len() != width {
			return nil, fmt.Errorf("bitlsh: row %d has length %d, want %d", i, r.Len(), width)
		}
	}
	m, err := bitmat.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return FindGroupsMatContext(ctx, m, threshold, cfg)
}

// FindGroupsMat is FindGroups over a prebuilt bit-matrix arena, sharing
// its storage with the caller: sketches read bits straight off the
// arena rows and candidate verification runs the norm-bounded,
// short-circuiting arena kernel. Groups and Stats are identical to
// FindGroups on the same rows.
func FindGroupsMat(m *bitmat.Matrix, threshold int, cfg Config) (*Result, error) {
	return FindGroupsMatContext(context.Background(), m, threshold, cfg)
}

// FindGroupsMatContext is FindGroupsMat with cooperative cancellation.
func FindGroupsMatContext(ctx context.Context, m *bitmat.Matrix, threshold int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threshold < 0 {
		return nil, fmt.Errorf("bitlsh: negative threshold %d", threshold)
	}
	n := m.Rows()
	if n == 0 {
		return &Result{}, nil
	}
	width := m.Cols()
	cfg = cfg.withDefaults(width, threshold)
	chk := ctxcheck.New(ctx, 2048)
	if err := chk.Err(); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// Sample the bit positions per table up front.
	positions := make([][]int, cfg.Tables)
	for t := range positions {
		positions[t] = samplePositions(rng, width, cfg.BitsPerHash)
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	stats := Stats{Tables: cfg.Tables, BitsPerHash: cfg.BitsPerHash}
	// seen deduplicates candidate pairs across tables.
	seen := make(map[[2]int32]struct{})
	for _, pos := range positions {
		buckets := make(map[uint64][]int32, n)
		for i := 0; i < n; i++ {
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			h := sketchMat(m, i, pos)
			buckets[h] = append(buckets[h], int32(i))
		}
		for _, members := range buckets {
			if len(members) < 2 {
				continue
			}
			for ai := 0; ai < len(members); ai++ {
				for bi := ai + 1; bi < len(members); bi++ {
					if err := chk.Tick(); err != nil {
						return nil, err
					}
					key := [2]int32{members[ai], members[bi]}
					if _, dup := seen[key]; dup {
						continue
					}
					seen[key] = struct{}{}
					stats.CandidatePairs++
					if m.HammingAtMost(int(members[ai]), int(members[bi]), threshold) {
						stats.VerifiedPairs++
						ra, rb := find(int(members[ai])), find(int(members[bi]))
						if ra != rb {
							parent[rb] = ra
						}
					}
				}
			}
		}
	}

	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		byRoot[find(i)] = append(byRoot[find(i)], i)
	}
	var groups [][]int
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	sortGroups(groups)
	return &Result{Groups: groups, Stats: stats}, nil
}

// samplePositions draws b positions in [0, width) with replacement —
// the classical bit-sampling family. Replacement matters: it keeps the
// per-table collision probability at (1-k/w)^b even when b exceeds the
// width, whereas distinct sampling with b = w would only ever collide
// identical rows.
func samplePositions(rng *rand.Rand, width, b int) []int {
	out := make([]int, b)
	for i := range out {
		out[i] = rng.Intn(width)
	}
	return out
}

// sketch hashes the sampled bits of a row with FNV-1a over the bit
// values, mixing the position index so permuted patterns differ.
func sketch(v *bitvec.Vector, positions []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for pi, p := range positions {
		bit := uint64(0)
		if v.Get(p) {
			bit = 1
		}
		h ^= bit ^ (uint64(pi) << 1)
		h *= prime64
	}
	return h
}

// sketchMat is sketch reading bits off arena row i — the same hash for
// the same row contents, so vector- and arena-backed runs agree.
func sketchMat(m *bitmat.Matrix, i int, positions []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for pi, p := range positions {
		bit := uint64(0)
		if m.Get(i, p) {
			bit = 1
		}
		h ^= bit ^ (uint64(pi) << 1)
		h *= prime64
	}
	return h
}

func sortGroups(groups [][]int) {
	for _, g := range groups {
		for i := 1; i < len(g); i++ {
			for j := i; j > 0 && g[j] < g[j-1]; j-- {
				g[j], g[j-1] = g[j-1], g[j]
			}
		}
	}
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j][0] < groups[j-1][0]; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}
