package bitlsh_test

import (
	"context"
	"testing"

	"repro/internal/testkit"
)

// TestAgainstOracle: bit-sampling LSH is approximate above threshold 0
// and exact at threshold 0 (identical rows collide in every table), so
// the harness checks pair recall against the brute-force oracle stays
// above the documented floor and that no false pair ever appears —
// every candidate is verified with the true Hamming distance. The full
// sweep lives in internal/testkit; this guard makes a bitlsh-only
// change fail in this package's own tests.
func TestAgainstOracle(t *testing.T) {
	ctx := context.Background()
	b := testkit.BackendByName("lsh")
	if b == nil {
		t.Fatal("lsh backend missing from the testkit registry")
	}
	if b.Exact || b.MinRecall <= 0 {
		t.Fatalf("lsh must be registered as approximate with a recall floor, got exact=%v floor=%v", b.Exact, b.MinRecall)
	}
	corpora := testkit.Corpora(false)
	for _, c := range corpora[:8] {
		failures, err := testkit.RunCorpus(ctx, c, []testkit.Backend{*b})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range failures {
			t.Error(f.Error())
		}
	}
}

// TestExactAtThresholdZero pins the threshold-0 exactness claim from
// the package doc: identical rows hash identically in every table, so
// at k=0 the LSH partition must equal the oracle partition, not merely
// meet a recall floor.
func TestExactAtThresholdZero(t *testing.T) {
	ctx := context.Background()
	b := testkit.BackendByName("lsh")
	if b == nil {
		t.Fatal("lsh backend missing from the testkit registry")
	}
	for _, c := range testkit.Corpora(false) {
		if c.Threshold != 0 {
			continue
		}
		rows, err := c.Rows()
		if err != nil {
			t.Fatal(err)
		}
		oracle := testkit.Oracle(rows, 0)
		got, err := b.Run(ctx, rows, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !testkit.SamePartition(oracle, got) {
			t.Errorf("[%s]: lsh at k=0 is not exact\n  oracle: %s\n  lsh:    %s",
				c, testkit.FormatPartition(oracle), testkit.FormatPartition(got))
		}
	}
}
