package bitlsh

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/cluster/rolediet"
)

func randRows(r *rand.Rand, n, dim int, density float64) []*bitvec.Vector {
	rows := make([]*bitvec.Vector, n)
	for i := range rows {
		v := bitvec.New(dim)
		for j := 0; j < dim; j++ {
			if r.Float64() < density {
				v.Set(j)
			}
		}
		rows[i] = v
	}
	return rows
}

func TestValidate(t *testing.T) {
	if err := (Config{Tables: -1}).Validate(); err == nil {
		t.Fatal("negative tables accepted")
	}
	rows := randRows(rand.New(rand.NewSource(1)), 4, 16, 0.5)
	if _, err := FindGroups(rows, -1, Config{}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := FindGroups(rows, 0, Config{BitsPerHash: -2}); err == nil {
		t.Fatal("negative bits accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := FindGroups(nil, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("groups = %v", res.Groups)
	}
}

func TestWidthMismatch(t *testing.T) {
	rows := []*bitvec.Vector{bitvec.New(8), bitvec.New(9)}
	if _, err := FindGroups(rows, 0, Config{}); err == nil {
		t.Fatal("mismatched widths accepted")
	}
}

func TestExactDuplicatesAlwaysFound(t *testing.T) {
	// At threshold 0 identical rows collide in every table: recall 1.
	r := rand.New(rand.NewSource(3))
	rows := randRows(r, 200, 128, 0.3)
	rows[50] = rows[10].Clone()
	rows[51] = rows[10].Clone()
	rows[120] = rows[60].Clone()
	res, err := FindGroups(rows, 0, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rolediet.Groups(rows, rolediet.Options{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Groups, want.Groups) {
		t.Fatalf("lsh %v != exact %v", res.Groups, want.Groups)
	}
}

func TestPropertyExactCaseMatchesRoleDiet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(60), 1+r.Intn(64), 0.3)
		for d := 0; d < r.Intn(8); d++ {
			rows[r.Intn(len(rows))] = rows[r.Intn(len(rows))].Clone()
		}
		got, err := FindGroups(rows, 0, Config{Seed: seed})
		if err != nil {
			return false
		}
		want, err := rolediet.Groups(rows, rolediet.Options{Threshold: 0})
		if err != nil {
			return false
		}
		if len(got.Groups) == 0 && len(want.Groups) == 0 {
			return true
		}
		return reflect.DeepEqual(got.Groups, want.Groups)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNoFalsePairsAtPositiveThreshold(t *testing.T) {
	// Soundness: every grouped role is within k of some group member.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(2)
		rows := randRows(r, 2+r.Intn(40), 8+r.Intn(56), 0.3)
		res, err := FindGroups(rows, k, Config{Seed: seed})
		if err != nil {
			return false
		}
		for _, g := range res.Groups {
			for _, i := range g {
				ok := false
				for _, j := range g {
					if i != j && rows[i].Hamming(rows[j]) <= k {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarPairsHighRecall(t *testing.T) {
	// Plant 20 pairs at distance 1 in a 256-bit space and measure
	// recall with default parameters; with w=256, k=1 the default b/L
	// should catch nearly all of them.
	r := rand.New(rand.NewSource(11))
	rows := randRows(r, 160, 256, 0.3)
	const pairs = 20
	for p := 0; p < pairs; p++ {
		base := rows[p*2]
		near := base.Clone()
		pos := r.Intn(256)
		near.SetTo(pos, !near.Get(pos)) // flip exactly one position
		rows[p*2+1] = near
	}
	res, err := FindGroups(rows, 1, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	grouped := map[int]int{}
	for gi, g := range res.Groups {
		for _, m := range g {
			grouped[m] = gi
		}
	}
	for p := 0; p < pairs; p++ {
		a, b := p*2, p*2+1
		ga, okA := grouped[a]
		gb, okB := grouped[b]
		if okA && okB && ga == gb {
			found++
		}
	}
	if float64(found) < 0.8*pairs {
		t.Fatalf("recall %d/%d below 0.8", found, pairs)
	}
}

func TestStatsPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	rows := randRows(r, 50, 64, 0.3)
	rows[1] = rows[0].Clone()
	res, err := FindGroups(rows, 0, Config{Tables: 4, BitsPerHash: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tables != 4 || res.Stats.BitsPerHash != 16 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.CandidatePairs < res.Stats.VerifiedPairs {
		t.Fatalf("verified > candidates: %+v", res.Stats)
	}
	if res.Stats.VerifiedPairs < 1 {
		t.Fatalf("planted duplicate not verified: %+v", res.Stats)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	rows := randRows(r, 80, 128, 0.3)
	a, err := FindGroups(rows, 1, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindGroups(rows, 1, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Groups, b.Groups) {
		t.Fatal("same seed produced different groups")
	}
}

func TestDefaultBits(t *testing.T) {
	if b := defaultBits(1000, 0); b != 64 {
		t.Fatalf("defaultBits(1000, 0) = %d, want 64", b)
	}
	if b := defaultBits(32, 0); b != 32 {
		t.Fatalf("defaultBits(32, 0) = %d, want 32", b)
	}
	b := defaultBits(1000, 1)
	if b < 8 || b > 1024 {
		t.Fatalf("defaultBits(1000, 1) = %d out of range", b)
	}
	if b := defaultBits(4, 4); b < 1 {
		t.Fatalf("defaultBits(4,4) = %d", b)
	}
}

func TestGroupsSortedContract(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	rows := randRows(r, 60, 32, 0.3)
	for d := 0; d < 10; d++ {
		rows[r.Intn(len(rows))] = rows[r.Intn(len(rows))].Clone()
	}
	res, err := FindGroups(rows, 0, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range res.Groups {
		if !sort.IntsAreSorted(g) {
			t.Fatalf("group %d not sorted: %v", gi, g)
		}
		if gi > 0 && res.Groups[gi-1][0] >= g[0] {
			t.Fatalf("groups not ordered by head: %v", res.Groups)
		}
	}
}
