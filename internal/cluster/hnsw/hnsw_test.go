package hnsw

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/metric"
)

func randRow(r *rand.Rand, dim int, density float64) *bitvec.Vector {
	v := bitvec.New(dim)
	for i := 0; i < dim; i++ {
		if r.Float64() < density {
			v.Set(i)
		}
	}
	return v
}

func TestValidate(t *testing.T) {
	if err := (Config{M: -1}).Validate(); err == nil {
		t.Fatal("negative M accepted")
	}
	if _, err := New(Config{M: -1}); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	idx, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search(bitvec.New(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	if hits != nil {
		t.Fatalf("Search on empty index = %v, want nil", hits)
	}
}

func TestSingleElement(t *testing.T) {
	v := bitvec.FromIndices(8, []int{1, 3})
	idx, err := Build([]*bitvec.Vector{v}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search(v, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != 0 || hits[0].Dist != 0 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestDimensionMismatch(t *testing.T) {
	idx, err := Build([]*bitvec.Vector{bitvec.New(8)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(bitvec.New(9)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Add wrong dim: err = %v", err)
	}
	if _, err := idx.Search(bitvec.New(9), 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Search wrong dim: err = %v", err)
	}
}

func TestKZeroOrNegative(t *testing.T) {
	idx, err := Build([]*bitvec.Vector{bitvec.New(4)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, -3} {
		hits, err := idx.Search(bitvec.New(4), k)
		if err != nil || hits != nil {
			t.Fatalf("Search(k=%d) = (%v, %v)", k, hits, err)
		}
	}
}

func TestFindsExactDuplicate(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rows := make([]*bitvec.Vector, 50)
	for i := range rows {
		rows[i] = randRow(r, 64, 0.3)
	}
	rows[37] = rows[5].Clone() // plant a duplicate
	idx, err := Build(rows, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search(rows[5], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	ids := map[int]bool{hits[0].ID: true, hits[1].ID: true}
	if !ids[5] || !ids[37] {
		t.Fatalf("duplicate pair not found: %v", hits)
	}
	if hits[0].Dist != 0 || hits[1].Dist != 0 {
		t.Fatalf("duplicate distances = %v", hits)
	}
}

// bruteKNN computes exact k nearest neighbours for recall measurement.
func bruteKNN(rows []*bitvec.Vector, q *bitvec.Vector, k int) []int {
	type pair struct {
		id int
		d  int
	}
	ps := make([]pair, len(rows))
	for i, r := range rows {
		ps[i] = pair{id: i, d: q.Hamming(r)}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].d != ps[j].d {
			return ps[i].d < ps[j].d
		}
		return ps[i].id < ps[j].id
	})
	out := make([]int, 0, k)
	for i := 0; i < k && i < len(ps); i++ {
		out = append(out, ps[i].id)
	}
	return out
}

func TestRecallAgainstBruteForce(t *testing.T) {
	const (
		n      = 400
		dim    = 128
		k      = 10
		trials = 40
	)
	r := rand.New(rand.NewSource(5))
	rows := make([]*bitvec.Vector, n)
	for i := range rows {
		rows[i] = randRow(r, dim, 0.25)
	}
	idx, err := Build(rows, Config{M: 16, EfConstruction: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	hitSum, total := 0, 0
	for tr := 0; tr < trials; tr++ {
		q := rows[r.Intn(n)]
		exact := bruteKNN(rows, q, k)
		// Recall is distance-based: an approximate hit counts if its
		// distance is within the exact k-th distance (ties are
		// interchangeable).
		kth := q.Hamming(rows[exact[len(exact)-1]])
		hits, err := idx.SearchEf(q, k, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hits {
			if int(h.Dist) <= kth {
				hitSum++
			}
		}
		total += k
	}
	recall := float64(hitSum) / float64(total)
	if recall < 0.9 {
		t.Fatalf("recall = %.3f, want >= 0.9", recall)
	}
}

func TestNoFalseDistances(t *testing.T) {
	// Every reported distance must equal the true metric value.
	r := rand.New(rand.NewSource(21))
	rows := make([]*bitvec.Vector, 100)
	for i := range rows {
		rows[i] = randRow(r, 64, 0.3)
	}
	idx, err := Build(rows, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := rows[r.Intn(len(rows))]
		hits, err := idx.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hits {
			if want := float64(q.Hamming(rows[h.ID])); h.Dist != want {
				t.Fatalf("hit %d reported dist %v, true %v", h.ID, h.Dist, want)
			}
		}
	}
}

func TestResultsSortedAscending(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	rows := make([]*bitvec.Vector, 200)
	for i := range rows {
		rows[i] = randRow(r, 64, 0.3)
	}
	idx, err := Build(rows, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search(rows[0], 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Dist < hits[i-1].Dist {
			t.Fatalf("hits not sorted: %v", hits)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	rows := make([]*bitvec.Vector, 150)
	for i := range rows {
		rows[i] = randRow(r, 64, 0.3)
	}
	build := func() []Neighbour {
		idx, err := Build(rows, Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		hits, err := idx.Search(rows[3], 10)
		if err != nil {
			t.Fatal(err)
		}
		return hits
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic result sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic results: %v vs %v", a, b)
		}
	}
}

func TestSearchRadius(t *testing.T) {
	rows := []*bitvec.Vector{
		bitvec.FromIndices(16, []int{0, 1}),
		bitvec.FromIndices(16, []int{0, 1}),     // dup of 0
		bitvec.FromIndices(16, []int{0, 1, 2}),  // dist 1 from 0
		bitvec.FromIndices(16, []int{8, 9, 10}), // far
	}
	idx, err := Build(rows, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.SearchRadius(rows[0], 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int]bool{}
	for _, h := range hits {
		if h.Dist > 1 {
			t.Fatalf("hit outside radius: %v", h)
		}
		ids[h.ID] = true
	}
	for _, want := range []int{0, 1, 2} {
		if !ids[want] {
			t.Fatalf("radius search missed id %d: %v", want, hits)
		}
	}
	if ids[3] {
		t.Fatal("radius search returned far point")
	}
}

func TestHeuristicSelection(t *testing.T) {
	// The heuristic variant must still find planted duplicates.
	r := rand.New(rand.NewSource(13))
	rows := make([]*bitvec.Vector, 120)
	for i := range rows {
		rows[i] = randRow(r, 64, 0.3)
	}
	rows[100] = rows[10].Clone()
	idx, err := Build(rows, Config{Seed: 8, Heuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.SearchEf(rows[10], 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.ID == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("heuristic index missed planted duplicate: %v", hits)
	}
}

func TestDistCallsMonotone(t *testing.T) {
	rows := []*bitvec.Vector{bitvec.New(8), bitvec.FromIndices(8, []int{1})}
	idx, err := Build(rows, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := idx.DistCalls()
	if before <= 0 {
		t.Fatal("no distance calls recorded during build")
	}
	if _, err := idx.Search(rows[0], 1); err != nil {
		t.Fatal(err)
	}
	if idx.DistCalls() <= before {
		t.Fatal("DistCalls did not grow after a search")
	}
}

func TestDefaultMetricIsManhattan(t *testing.T) {
	idx, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.cfg.Metric != metric.Manhattan {
		t.Fatalf("default metric = %v, want manhattan", idx.cfg.Metric)
	}
}

func TestLenGrows(t *testing.T) {
	idx, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := idx.Add(bitvec.FromIndices(8, []int{i % 8})); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 10 {
		t.Fatalf("Len = %d, want 10", idx.Len())
	}
}
