package hnsw_test

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cluster/hnsw"
)

// Example builds an index over assignment rows and finds the nearest
// neighbours of a query row, as the paper's approximate baseline does
// per role.
func Example() {
	rows := []*bitvec.Vector{
		bitvec.FromIndices(8, []int{0, 1, 2}),
		bitvec.FromIndices(8, []int{0, 1, 2, 3}),
		bitvec.FromIndices(8, []int{5, 6, 7}),
	}
	idx, err := hnsw.Build(rows, hnsw.Config{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	hits, err := idx.Search(rows[0], 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, h := range hits {
		fmt.Printf("id=%d dist=%.0f\n", h.ID, h.Dist)
	}
	// Output:
	// id=0 dist=0
	// id=1 dist=1
}
