//go:build race

package hnsw

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates on its own behalf.
const raceEnabled = true
