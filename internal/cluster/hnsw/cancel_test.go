package hnsw

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestBuildContextAlreadyCanceled(t *testing.T) {
	m, err := gen.Matrix(gen.MatrixParams{Rows: 16, Cols: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, m.Rows, Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildContext on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestBuildContextCanceledMidRun(t *testing.T) {
	// Building an index over thousands of dense rows with the default
	// beam width takes far longer than the cancel delay, so a nil error
	// here would mean the insert loop ignored the cancellation.
	m, err := gen.Matrix(gen.MatrixParams{Rows: 3000, Cols: 512, Density: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(time.Millisecond, cancel)

	done := make(chan error, 1)
	go func() {
		_, err := BuildContext(ctx, m.Rows, Config{})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("BuildContext = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("BuildContext did not return within 30s of cancellation")
	}
}

func TestBuildContextBackgroundMatchesBuild(t *testing.T) {
	m, err := gen.Matrix(gen.MatrixParams{Rows: 300, Cols: 64, ClusterProportion: 0.3, MaxClusterSize: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Build(m.Rows, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := BuildContext(context.Background(), m.Rows, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != ctxed.Len() {
		t.Fatalf("index sizes differ: %d vs %d", plain.Len(), ctxed.Len())
	}
}
