package hnsw

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitmat"
	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
	"repro/internal/parallel"
)

// BuildParallel constructs the index with insertions fanned out over
// worker goroutines, the standard HNSW batch-construction scheme:
// every node's adjacency list is guarded by its own mutex, searches
// snapshot-copy the lists they traverse, and the entry point is
// swapped under a read-write lock.
//
// Levels are drawn serially from the same seeded generator in row
// order before the fan-out, so the layer structure is identical to the
// serial build; with one worker the function delegates to Build and
// reproduces it exactly. With several workers the link sets depend on
// insertion interleaving — the graph remains a valid HNSW index with
// statistically equivalent recall (the testkit backend registry
// enforces the same recall floor as the serial build), it is just not
// bit-identical. Workers <= 0 selects GOMAXPROCS.
func BuildParallel(rows []*bitvec.Vector, cfg Config, workers int) (*Index, error) {
	return BuildParallelContext(context.Background(), rows, cfg, workers)
}

// BuildParallelContext is BuildParallel with cooperative cancellation:
// each worker polls the context between insertions and the build
// aborts with ctx.Err(), discarding the partial index.
func BuildParallelContext(ctx context.Context, rows []*bitvec.Vector, cfg Config, workers int) (*Index, error) {
	n := len(rows)
	if w := parallel.Workers(workers, n); n == 0 || w == 1 {
		return BuildContext(ctx, rows, cfg)
	}
	idx, err := New(cfg)
	if err != nil {
		return nil, err
	}
	dim := rows[0].Len()
	for i, r := range rows {
		if r.Len() != dim {
			return nil, fmt.Errorf("%w: row %d has %d, index has %d", ErrDimensionMismatch, i, r.Len(), dim)
		}
	}
	idx.dim = dim
	if idx.fast {
		m, err := bitmat.FromRows(rows)
		if err != nil {
			return nil, err
		}
		idx.mat = m
	} else {
		idx.vecs = rows
	}
	return pbuild(ctx, idx, n, workers)
}

// BuildFromMatParallel is BuildParallel directly over the rows of a
// prebuilt arena, sharing its storage. Like BuildFromMat it supports
// only the arena metrics (Hamming/Manhattan) and retains m.
func BuildFromMatParallel(m *bitmat.Matrix, cfg Config, workers int) (*Index, error) {
	return BuildFromMatParallelContext(context.Background(), m, cfg, workers)
}

// BuildFromMatParallelContext is BuildFromMatParallel with cooperative
// cancellation.
func BuildFromMatParallelContext(ctx context.Context, m *bitmat.Matrix, cfg Config, workers int) (*Index, error) {
	n := m.Rows()
	if w := parallel.Workers(workers, n); n == 0 || w == 1 {
		return BuildFromMatContext(ctx, m, cfg)
	}
	idx, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if !idx.fast {
		return nil, fmt.Errorf("hnsw: BuildFromMat requires the Hamming or Manhattan metric")
	}
	idx.mat = m
	idx.dim = m.Cols()
	return pbuild(ctx, idx, n, workers)
}

// pbuild runs the concurrent insertion phase over an index whose row
// storage (arena or vecs) is already populated for all n rows.
func pbuild(ctx context.Context, idx *Index, n, workers int) (*Index, error) {
	// Draw all levels up front from the index generator, in row order —
	// exactly the sequence the serial build would consume.
	levels := make([]int, n)
	for i := range levels {
		levels[i] = idx.randomLevel()
	}

	b := &pbuilder{
		idx:    idx,
		nodes:  make([]pnode, n),
		levels: levels,
	}
	for i := range b.nodes {
		b.nodes[i].neighbours = make([][]candidate, levels[i]+1)
	}
	// Node 0 seeds the graph as the entry point, mirroring the serial
	// first Add; everything after it is inserted concurrently.
	b.entry = 0
	b.maxLayer = levels[0]

	w := parallel.Workers(workers, n-1)
	chunks := parallel.SplitRange(n-1, w)
	err := parallel.ForEachChunk(ctx, chunks, 1, func(_ int, c parallel.Chunk, chk *ctxcheck.Checker) error {
		s := &searchScratch{visited: make([]uint32, n)}
		for i := c.Lo; i < c.Hi; i++ {
			if err := chk.Tick(); err != nil {
				return err
			}
			b.insert(i+1, s)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	nodes := make([]node, n)
	for i := range b.nodes {
		nodes[i] = node{neighbours: b.nodes[i].neighbours}
	}
	idx.nodes = nodes
	idx.entry = b.entry
	idx.maxLayer = b.maxLayer
	return idx, nil
}

// pnode is one node during parallel construction: its adjacency lists
// (edges carrying their distances, like the serial node) plus the
// mutex guarding them. Row storage stays on the index (arena or vecs),
// shared immutably by every worker.
type pnode struct {
	mu         sync.Mutex
	neighbours [][]candidate
}

// pbuilder holds the shared state of a parallel build. Distances go
// through Index.nd, whose counter is atomic, off the already-populated
// row storage.
type pbuilder struct {
	idx      *Index
	nodes    []pnode
	levels   []int
	entryMu  sync.RWMutex
	entry    int
	maxLayer int
}

// d evaluates the distance between rows i and j off the index storage.
func (b *pbuilder) d(i, j int) float64 {
	return b.idx.nd(i, j)
}

// neighboursAt snapshot-copies id's adjacency at the given layer into
// buf so the caller can walk it without holding the node lock.
func (b *pbuilder) neighboursAt(id, layer int, buf []candidate) []candidate {
	nd := &b.nodes[id]
	nd.mu.Lock()
	buf = append(buf[:0], nd.neighbours[layer]...)
	nd.mu.Unlock()
	return buf
}

// insert adds node id to the graph, following Index.insert step for
// step with locked adjacency access.
func (b *pbuilder) insert(id int, s *searchScratch) {
	level := b.levels[id]

	b.entryMu.RLock()
	ep, maxLayer := b.entry, b.maxLayer
	b.entryMu.RUnlock()

	for l := maxLayer; l > level; l-- {
		ep = b.greedyClosest(id, ep, l, s)
	}

	startLayer := min(level, maxLayer)
	eps := append(s.eps[:0], ep)
	for l := startLayer; l >= 0; l-- {
		found := b.searchLayer(id, eps, b.idx.cfg.EfConstruction, l, s)
		s.selected = b.idx.selectNeighboursInto(s.selected[:0], found, b.idx.cfg.M, s)
		nd := &b.nodes[id]
		nd.mu.Lock()
		// Merge rather than overwrite: concurrent inserters may already
		// have back-linked into this node's list at this layer.
		for _, nb := range s.selected {
			if !containsEdge(nd.neighbours[l], nb.id) {
				nd.neighbours[l] = append(nd.neighbours[l], nb)
			}
		}
		nd.mu.Unlock()
		for _, nb := range s.selected {
			b.link(nb.id, id, l, nb.dist, s)
		}
		eps = eps[:0]
		for _, c := range found {
			eps = append(eps, c.id)
		}
		if len(eps) == 0 {
			eps = append(eps, ep)
		}
	}
	s.eps = eps

	b.entryMu.Lock()
	if level > b.maxLayer {
		b.maxLayer = level
		b.entry = id
	}
	b.entryMu.Unlock()
}

// link adds dst (at the given distance from src) to src's adjacency at
// the given layer, deduplicating (a pair inserted concurrently can
// discover each other from both sides) and shrinking with the
// selection policy on overflow. The stored edge distances make the
// overflow re-selection free of distance evaluations; the whole
// operation runs under src's lock.
func (b *pbuilder) link(src, dst, layer int, dist float64, s *searchScratch) {
	nd := &b.nodes[src]
	limit := b.idx.maxNeighbours(layer)
	nd.mu.Lock()
	if containsEdge(nd.neighbours[layer], dst) {
		nd.mu.Unlock()
		return
	}
	ns := append(nd.neighbours[layer], candidate{id: dst, dist: dist})
	if len(ns) > limit {
		s.linkSel = b.idx.selectNeighboursInto(s.linkSel[:0], ns, limit, s)
		// The overflowed list has capacity limit+1 >= the selection, so
		// the shrink reuses its backing.
		ns = append(ns[:0], s.linkSel...)
	}
	nd.neighbours[layer] = ns
	nd.mu.Unlock()
}

func containsEdge(edges []candidate, id int) bool {
	for _, e := range edges {
		if e.id == id {
			return true
		}
	}
	return false
}

// greedyClosest mirrors Index.greedyClosest over snapshot adjacency,
// including the norm-gap skip on the arena path.
func (b *pbuilder) greedyClosest(q, ep, layer int, s *searchScratch) int {
	fast := b.idx.fast
	qn := 0
	if fast {
		qn = b.idx.mat.Norm(q)
	}
	cur := ep
	curDist := b.d(q, cur)
	for {
		improved := false
		s.adj = b.neighboursAt(cur, layer, s.adj)
		for _, e := range s.adj {
			nb := e.id
			if fast {
				if lb := qn - b.idx.mat.Norm(nb); float64(lb) >= curDist || float64(-lb) >= curDist {
					continue
				}
			}
			if dd := b.d(q, nb); dd < curDist {
				cur, curDist = nb, dd
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer mirrors Index.searchLayer over snapshot adjacency with
// the worker scratch. The returned slice is owned by the scratch and
// valid until the next call.
func (b *pbuilder) searchLayer(q int, eps []int, ef, layer int, s *searchScratch) []candidate {
	fast := b.idx.fast
	qn := 0
	if fast {
		qn = b.idx.mat.Norm(q)
	}
	epoch := s.visit(len(b.nodes))
	s.frontier = s.frontier[:0]
	s.best = s.best[:0]

	for _, ep := range eps {
		if s.visited[ep] == epoch {
			continue
		}
		s.visited[ep] = epoch
		c := candidate{id: ep, dist: b.d(q, ep)}
		s.frontier.push(c)
		s.best.push(c)
	}

	for s.frontier.len() > 0 {
		cur := s.frontier.pop()
		if s.best.len() >= ef && cur.dist > s.best.top().dist {
			break
		}
		s.adj = b.neighboursAt(cur.id, layer, s.adj)
		for _, e := range s.adj {
			nb := e.id
			if s.visited[nb] == epoch {
				continue
			}
			s.visited[nb] = epoch
			// Same norm-gap lower bound as the serial searchLayer: skip
			// candidates that provably cannot enter a full beam.
			if fast && s.best.len() >= ef {
				if lb := qn - b.idx.mat.Norm(nb); float64(lb) >= s.best.top().dist || float64(-lb) >= s.best.top().dist {
					continue
				}
			}
			dd := b.d(q, nb)
			if s.best.len() < ef || dd < s.best.top().dist {
				c := candidate{id: nb, dist: dd}
				s.frontier.push(c)
				s.best.push(c)
				if s.best.len() > ef {
					s.best.pop()
				}
			}
		}
	}

	if cap(s.result) < s.best.len() {
		s.result = make([]candidate, s.best.len())
	}
	s.result = s.result[:s.best.len()]
	for i := len(s.result) - 1; i >= 0; i-- {
		s.result[i] = s.best.pop()
	}
	return s.result
}
