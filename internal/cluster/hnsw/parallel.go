package hnsw

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
	"repro/internal/metric"
	"repro/internal/parallel"
)

// BuildParallel constructs the index with insertions fanned out over
// worker goroutines, the standard HNSW batch-construction scheme:
// every node's adjacency list is guarded by its own mutex, searches
// snapshot-copy the lists they traverse, and the entry point is
// swapped under a read-write lock.
//
// Levels are drawn serially from the same seeded generator in row
// order before the fan-out, so the layer structure is identical to the
// serial build; with one worker the function delegates to Build and
// reproduces it exactly. With several workers the link sets depend on
// insertion interleaving — the graph remains a valid HNSW index with
// statistically equivalent recall (the testkit backend registry
// enforces the same recall floor as the serial build), it is just not
// bit-identical. Workers <= 0 selects GOMAXPROCS.
func BuildParallel(rows []*bitvec.Vector, cfg Config, workers int) (*Index, error) {
	return BuildParallelContext(context.Background(), rows, cfg, workers)
}

// BuildParallelContext is BuildParallel with cooperative cancellation:
// each worker polls the context between insertions and the build
// aborts with ctx.Err(), discarding the partial index.
func BuildParallelContext(ctx context.Context, rows []*bitvec.Vector, cfg Config, workers int) (*Index, error) {
	n := len(rows)
	if w := parallel.Workers(workers, n); n == 0 || w == 1 {
		return BuildContext(ctx, rows, cfg)
	}
	idx, err := New(cfg)
	if err != nil {
		return nil, err
	}
	dim := rows[0].Len()
	for i, r := range rows {
		if r.Len() != dim {
			return nil, fmt.Errorf("%w: row %d has %d, index has %d", ErrDimensionMismatch, i, r.Len(), dim)
		}
	}
	idx.dim = dim

	// Draw all levels up front from the index generator, in row order —
	// exactly the sequence the serial build would consume.
	levels := make([]int, n)
	for i := range levels {
		levels[i] = idx.randomLevel()
	}

	b := &pbuilder{
		cfg:    idx.cfg,
		dist:   idx.dist,
		nodes:  make([]pnode, n),
		levels: levels,
	}
	for i := range b.nodes {
		b.nodes[i].vec = rows[i]
		b.nodes[i].neighbours = make([][]int, levels[i]+1)
	}
	// Node 0 seeds the graph as the entry point, mirroring the serial
	// first Add; everything after it is inserted concurrently.
	b.entry = 0
	b.maxLayer = levels[0]

	w := parallel.Workers(workers, n-1)
	chunks := parallel.SplitRange(n-1, w)
	err = parallel.ForEachChunk(ctx, chunks, 1, func(_ int, c parallel.Chunk, chk *ctxcheck.Checker) error {
		s := &pscratch{visited: make([]uint32, n)}
		for i := c.Lo; i < c.Hi; i++ {
			if err := chk.Tick(); err != nil {
				return err
			}
			b.insert(i+1, s)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	nodes := make([]*node, n)
	for i := range b.nodes {
		nodes[i] = &node{vec: b.nodes[i].vec, neighbours: b.nodes[i].neighbours}
	}
	idx.nodes = nodes
	idx.entry = b.entry
	idx.maxLayer = b.maxLayer
	idx.distCalls = int(b.distCalls.Load())
	return idx, nil
}

// pnode is one node during parallel construction: the serial node plus
// the mutex guarding its adjacency lists.
type pnode struct {
	mu         sync.Mutex
	vec        *bitvec.Vector
	neighbours [][]int
}

// pbuilder holds the shared state of a parallel build.
type pbuilder struct {
	cfg       Config
	dist      metric.BitFunc
	nodes     []pnode
	levels    []int
	entryMu   sync.RWMutex
	entry     int
	maxLayer  int
	distCalls atomic.Int64
}

// pscratch is per-worker search scratch, reused across every insertion
// the worker performs: an epoch-stamped visited array replaces the
// per-search map, and the heaps and copy buffers keep their capacity.
type pscratch struct {
	visited  []uint32
	epoch    uint32
	frontier minHeap
	best     maxHeap
	result   []candidate
	adj      []int
	eps      []int
}

func (b *pbuilder) d(a, v *bitvec.Vector) float64 {
	b.distCalls.Add(1)
	return b.dist(a, v)
}

func (b *pbuilder) maxNeighbours(layer int) int {
	if layer == 0 {
		return 2 * b.cfg.M
	}
	return b.cfg.M
}

// neighboursAt snapshot-copies id's adjacency at the given layer into
// buf so the caller can walk it without holding the node lock.
func (b *pbuilder) neighboursAt(id, layer int, buf []int) []int {
	nd := &b.nodes[id]
	nd.mu.Lock()
	buf = append(buf[:0], nd.neighbours[layer]...)
	nd.mu.Unlock()
	return buf
}

// insert adds node id to the graph, following Index.Add step for step
// with locked adjacency access.
func (b *pbuilder) insert(id int, s *pscratch) {
	v := b.nodes[id].vec
	level := b.levels[id]

	b.entryMu.RLock()
	ep, maxLayer := b.entry, b.maxLayer
	b.entryMu.RUnlock()

	for l := maxLayer; l > level; l-- {
		ep = b.greedyClosest(v, ep, l, s)
	}

	startLayer := min(level, maxLayer)
	eps := append(s.eps[:0], ep)
	for l := startLayer; l >= 0; l-- {
		found := b.searchLayer(v, eps, b.cfg.EfConstruction, l, s)
		selected := b.selectNeighbours(v, found, b.cfg.M)
		nd := &b.nodes[id]
		nd.mu.Lock()
		// Merge rather than overwrite: concurrent inserters may already
		// have back-linked into this node's list at this layer.
		for _, nb := range selected {
			if !containsID(nd.neighbours[l], nb) {
				nd.neighbours[l] = append(nd.neighbours[l], nb)
			}
		}
		nd.mu.Unlock()
		for _, nb := range selected {
			b.link(nb, id, l)
		}
		eps = eps[:0]
		for _, c := range found {
			eps = append(eps, c.id)
		}
		if len(eps) == 0 {
			eps = append(eps, ep)
		}
	}
	s.eps = eps

	b.entryMu.Lock()
	if level > b.maxLayer {
		b.maxLayer = level
		b.entry = id
	}
	b.entryMu.Unlock()
}

// link adds dst to src's adjacency at the given layer, deduplicating
// (a pair inserted concurrently can discover each other from both
// sides) and shrinking with the selection policy on overflow. The
// whole operation runs under src's lock; the distance evaluations it
// makes touch only immutable vectors.
func (b *pbuilder) link(src, dst, layer int) {
	nd := &b.nodes[src]
	limit := b.maxNeighbours(layer)
	nd.mu.Lock()
	if containsID(nd.neighbours[layer], dst) {
		nd.mu.Unlock()
		return
	}
	ns := append(nd.neighbours[layer], dst)
	if len(ns) > limit {
		cands := make([]candidate, 0, len(ns))
		for _, nb := range ns {
			cands = append(cands, candidate{id: nb, dist: b.d(nd.vec, b.nodes[nb].vec)})
		}
		ns = b.selectNeighbours(nd.vec, cands, limit)
	}
	nd.neighbours[layer] = ns
	nd.mu.Unlock()
}

func containsID(ids []int, id int) bool {
	for _, e := range ids {
		if e == id {
			return true
		}
	}
	return false
}

// greedyClosest mirrors Index.greedyClosest over snapshot adjacency.
func (b *pbuilder) greedyClosest(q *bitvec.Vector, ep, layer int, s *pscratch) int {
	cur := ep
	curDist := b.d(q, b.nodes[cur].vec)
	for {
		improved := false
		s.adj = b.neighboursAt(cur, layer, s.adj)
		for _, nb := range s.adj {
			if dd := b.d(q, b.nodes[nb].vec); dd < curDist {
				cur, curDist = nb, dd
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer mirrors Index.searchLayer over snapshot adjacency, with
// the worker scratch replacing the per-call visited map and heaps. The
// returned slice is owned by the scratch and valid until the next call.
func (b *pbuilder) searchLayer(q *bitvec.Vector, eps []int, ef, layer int, s *pscratch) []candidate {
	s.epoch++
	s.frontier = s.frontier[:0]
	s.best = s.best[:0]

	for _, ep := range eps {
		if s.visited[ep] == s.epoch {
			continue
		}
		s.visited[ep] = s.epoch
		c := candidate{id: ep, dist: b.d(q, b.nodes[ep].vec)}
		s.frontier.push(c)
		s.best.push(c)
	}

	for s.frontier.len() > 0 {
		cur := s.frontier.pop()
		if s.best.len() >= ef && cur.dist > s.best.top().dist {
			break
		}
		s.adj = b.neighboursAt(cur.id, layer, s.adj)
		for _, nb := range s.adj {
			if s.visited[nb] == s.epoch {
				continue
			}
			s.visited[nb] = s.epoch
			dd := b.d(q, b.nodes[nb].vec)
			if s.best.len() < ef || dd < s.best.top().dist {
				c := candidate{id: nb, dist: dd}
				s.frontier.push(c)
				s.best.push(c)
				if s.best.len() > ef {
					s.best.pop()
				}
			}
		}
	}

	if cap(s.result) < s.best.len() {
		s.result = make([]candidate, s.best.len())
	}
	s.result = s.result[:s.best.len()]
	for i := len(s.result) - 1; i >= 0; i-- {
		s.result[i] = s.best.pop()
	}
	return s.result
}

// selectNeighbours mirrors Index.selectNeighbours with the builder's
// atomic distance counter. The returned slice is freshly allocated:
// it is retained inside adjacency lists.
func (b *pbuilder) selectNeighbours(q *bitvec.Vector, cands []candidate, m int) []int {
	sorted := make([]candidate, len(cands))
	copy(sorted, cands)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].dist < sorted[j].dist })

	if !b.cfg.Heuristic {
		if len(sorted) > m {
			sorted = sorted[:m]
		}
		out := make([]int, len(sorted))
		for i, c := range sorted {
			out[i] = c.id
		}
		return out
	}

	out := make([]int, 0, m)
	for _, c := range sorted {
		if len(out) >= m {
			break
		}
		keep := true
		for _, sel := range out {
			if b.d(b.nodes[c.id].vec, b.nodes[sel].vec) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c.id)
		}
	}
	if len(out) < m {
		chosen := make(map[int]struct{}, len(out))
		for _, sel := range out {
			chosen[sel] = struct{}{}
		}
		for _, c := range sorted {
			if len(out) >= m {
				break
			}
			if _, ok := chosen[c.id]; !ok {
				out = append(out, c.id)
			}
		}
	}
	return out
}
