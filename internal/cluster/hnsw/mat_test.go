package hnsw

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/metric"
)

// TestBuildFromMatMatchesBuild: building from a prepacked arena must
// reproduce the vector build exactly — the same seeded level sequence
// drives the same searches over the same distances.
func TestBuildFromMatMatchesBuild(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	rows := randMatrix(r, 250, 130, 0.25)
	for _, cfg := range []Config{
		{M: 8, EfConstruction: 60, Seed: 7},
		{M: 6, EfConstruction: 40, Seed: 7, Heuristic: true},
		{M: 8, EfConstruction: 60, Seed: 7, Metric: metric.Hamming},
	} {
		fromVecs, err := Build(rows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := bitmat.FromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		fromMat, err := BuildFromMat(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fromVecs.entry != fromMat.entry || fromVecs.maxLayer != fromMat.maxLayer {
			t.Fatalf("entry/maxLayer diverge: vecs (%d,%d) mat (%d,%d)",
				fromVecs.entry, fromVecs.maxLayer, fromMat.entry, fromMat.maxLayer)
		}
		for i := range fromVecs.nodes {
			vn, mn := fromVecs.nodes[i], fromMat.nodes[i]
			if len(vn.neighbours) != len(mn.neighbours) {
				t.Fatalf("node %d: level diverges", i)
			}
			for l := range vn.neighbours {
				if len(vn.neighbours[l]) != len(mn.neighbours[l]) {
					t.Fatalf("node %d layer %d: adjacency diverges", i, l)
				}
				for j := range vn.neighbours[l] {
					if vn.neighbours[l][j] != mn.neighbours[l][j] {
						t.Fatalf("node %d layer %d: adjacency diverges", i, l)
					}
				}
			}
		}
	}
}

// TestBuildFromMatRejectsExoticMetrics: only the arena metrics can
// evaluate distances off the bit matrix.
func TestBuildFromMatRejectsExoticMetrics(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	rows := randMatrix(r, 10, 32, 0.3)
	m, err := bitmat.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []metric.Kind{metric.Euclidean, metric.Jaccard, metric.Cosine} {
		if _, err := BuildFromMat(m, Config{Metric: k}); err == nil {
			t.Fatalf("BuildFromMat accepted metric %v", k)
		}
		if _, err := BuildFromMatParallel(m, Config{Metric: k}, 4); err == nil {
			t.Fatalf("BuildFromMatParallel accepted metric %v", k)
		}
	}
}

// TestSearchRowMatchesVector: querying by row id must return exactly
// what querying with the row's vector returns — the row-to-row and
// words-to-row kernels compute the same distances.
func TestSearchRowMatchesVector(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	rows := randMatrix(r, 300, 96, 0.2)
	for _, cfg := range []Config{
		{M: 8, EfConstruction: 50, Seed: 3},
		{M: 8, EfConstruction: 50, Seed: 3, Metric: metric.Jaccard},
	} {
		idx, err := Build(rows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			byVec, err := idx.SearchRadius(row, 5, 40)
			if err != nil {
				t.Fatal(err)
			}
			byRow, err := idx.SearchRadiusRow(i, 5, 40)
			if err != nil {
				t.Fatal(err)
			}
			if len(byVec) != len(byRow) {
				t.Fatalf("metric %v row %d: %d hits by vector, %d by row", cfg.Metric, i, len(byVec), len(byRow))
			}
			for j := range byVec {
				if byVec[j] != byRow[j] {
					t.Fatalf("metric %v row %d hit %d: %+v by vector, %+v by row", cfg.Metric, i, j, byVec[j], byRow[j])
				}
			}
		}
	}

	idx, err := Build(rows, Config{M: 8, EfConstruction: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.SearchEfRow(-1, 5, 40); err == nil {
		t.Fatal("SearchEfRow accepted a negative row")
	}
	if _, err := idx.SearchEfRow(len(rows), 5, 40); err == nil {
		t.Fatal("SearchEfRow accepted an out-of-range row")
	}
}

// TestBuildFromMatParallelRecall mirrors TestBuildParallelRecall over a
// prepacked arena: the multi-worker arena build is a valid index
// meeting the same recall floor.
func TestBuildFromMatParallelRecall(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	rows := randMatrix(r, 400, 96, 0.25)
	m, err := bitmat.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildFromMatParallel(m, Config{M: 12, EfConstruction: 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != len(rows) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(rows))
	}
	const k = 5
	hitSum, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		qi := r.Intn(len(rows))
		exact := bruteKNN(rows, rows[qi], k)
		got, err := idx.SearchEfRow(qi, k, 128)
		if err != nil {
			t.Fatal(err)
		}
		inExact := make(map[int]bool, len(exact))
		for _, id := range exact {
			inExact[id] = true
		}
		for _, h := range got {
			if inExact[h.ID] {
				hitSum++
			}
		}
		total += k
	}
	if recall := float64(hitSum) / float64(total); recall < 0.8 {
		t.Fatalf("recall %.3f below floor 0.8", recall)
	}
}

// TestSearchAllocs pins the allocation profile of a warm search: one
// result slice per call, everything else on pooled scratch.
func TestSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	r := rand.New(rand.NewSource(35))
	rows := randMatrix(r, 500, 128, 0.25)
	idx, err := Build(rows, Config{M: 8, EfConstruction: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q := rows[17]
	for i := 0; i < 8; i++ { // warm the scratch pool
		if _, err := idx.SearchEf(q, 10, 64); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := idx.SearchEf(q, 10, 64); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("warm SearchEf makes %.1f allocs per run, want <= 2", allocs)
	}
}
