package hnsw

// candidate is an (id, distance) pair flowing through the search heaps.
type candidate struct {
	id   int
	dist float64
}

// minHeap is a binary heap of candidates ordered by ascending distance
// (closest first). It is used for the expansion frontier during layer
// search.
type minHeap []candidate

func (h *minHeap) push(c candidate) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist <= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *minHeap) pop() candidate {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown(0)
	return top
}

func (h *minHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l].dist < (*h)[smallest].dist {
			smallest = l
		}
		if r < n && (*h)[r].dist < (*h)[smallest].dist {
			smallest = r
		}
		if smallest == i {
			return
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

func (h minHeap) len() int       { return len(h) }
func (h minHeap) top() candidate { return h[0] }

// maxHeap is a binary heap of candidates ordered by descending distance
// (farthest first). It holds the current best-ef result set so the worst
// member can be evicted in O(log n).
type maxHeap []candidate

func (h *maxHeap) push(c candidate) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist >= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *maxHeap) pop() candidate {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown(0)
	return top
}

func (h *maxHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && (*h)[l].dist > (*h)[largest].dist {
			largest = l
		}
		if r < n && (*h)[r].dist > (*h)[largest].dist {
			largest = r
		}
		if largest == i {
			return
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}

func (h maxHeap) len() int       { return len(h) }
func (h maxHeap) top() candidate { return h[0] }
