package hnsw

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
)

func randMatrix(r *rand.Rand, n, dim int, density float64) []*bitvec.Vector {
	rows := make([]*bitvec.Vector, n)
	for i := range rows {
		rows[i] = randRow(r, dim, density)
	}
	return rows
}

// TestBuildParallelOneWorkerMatchesSerial: with a single worker the
// parallel build must reproduce the serial index exactly — same levels
// from the same seeded generator, same links, same search results.
func TestBuildParallelOneWorkerMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rows := randMatrix(r, 200, 64, 0.3)
	cfg := Config{M: 8, EfConstruction: 60, Seed: 5}

	serial, err := Build(rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildParallel(rows, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if serial.entry != par.entry || serial.maxLayer != par.maxLayer {
		t.Fatalf("entry/maxLayer diverge: serial (%d,%d) parallel (%d,%d)",
			serial.entry, serial.maxLayer, par.entry, par.maxLayer)
	}
	for i := range serial.nodes {
		sn, pn := serial.nodes[i], par.nodes[i]
		if len(sn.neighbours) != len(pn.neighbours) {
			t.Fatalf("node %d: level diverges", i)
		}
		for l := range sn.neighbours {
			if len(sn.neighbours[l]) != len(pn.neighbours[l]) {
				t.Fatalf("node %d layer %d: adjacency diverges", i, l)
			}
			for j := range sn.neighbours[l] {
				if sn.neighbours[l][j] != pn.neighbours[l][j] {
					t.Fatalf("node %d layer %d: adjacency diverges", i, l)
				}
			}
		}
	}
}

// TestBuildParallelRecall holds the multi-worker build to the same
// recall floor as the serial index on the same workload.
func TestBuildParallelRecall(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	rows := randMatrix(r, 400, 96, 0.25)
	idx, err := BuildParallel(rows, Config{M: 12, EfConstruction: 100, Heuristic: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != len(rows) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(rows))
	}

	const k = 5
	hitSum, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		q := rows[r.Intn(len(rows))]
		exact := bruteKNN(rows, q, k)
		got, err := idx.SearchEf(q, k, 128)
		if err != nil {
			t.Fatal(err)
		}
		inExact := make(map[int]bool, len(exact))
		for _, id := range exact {
			inExact[id] = true
		}
		for _, nb := range got {
			if inExact[nb.ID] {
				hitSum++
			}
		}
		total += k
	}
	if recall := float64(hitSum) / float64(total); recall < 0.85 {
		t.Fatalf("parallel-build recall = %.3f, want >= 0.85", recall)
	}
}

// TestBuildParallelDistancesHonest: every reported distance must equal
// the true metric distance; the parallel build may miss neighbours but
// must never fabricate distances.
func TestBuildParallelDistancesHonest(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	rows := randMatrix(r, 150, 48, 0.3)
	idx, err := BuildParallel(rows, Config{M: 8, EfConstruction: 40}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := randRow(r, 48, 0.3)
		got, err := idx.SearchEf(q, 8, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range got {
			if want := float64(q.Hamming(rows[nb.ID])); nb.Dist != want {
				t.Fatalf("neighbour %d: dist %v, true %v", nb.ID, nb.Dist, want)
			}
		}
	}
}

func TestBuildParallelValidation(t *testing.T) {
	if _, err := BuildParallel(nil, Config{M: -1}, 2); err == nil {
		t.Fatal("negative M accepted")
	}
	r := rand.New(rand.NewSource(1))
	rows := randMatrix(r, 8, 16, 0.5)
	rows[5] = randRow(r, 17, 0.5)
	if _, err := BuildParallel(rows, Config{}, 2); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestBuildParallelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := rand.New(rand.NewSource(2))
	rows := randMatrix(r, 64, 16, 0.5)
	if _, err := BuildParallelContext(ctx, rows, Config{}, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBuildParallelEmptyAndSingle covers the delegation edge cases.
func TestBuildParallelEmptyAndSingle(t *testing.T) {
	idx, err := BuildParallel(nil, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 0 {
		t.Fatalf("Len = %d", idx.Len())
	}
	r := rand.New(rand.NewSource(3))
	idx, err = BuildParallel(randMatrix(r, 1, 8, 0.5), Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
}
