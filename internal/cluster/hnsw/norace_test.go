//go:build !race

package hnsw

const raceEnabled = false
