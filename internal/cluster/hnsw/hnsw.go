// Package hnsw implements Hierarchical Navigable Small World graphs
// (Malkov & Yashunin, 2018) from scratch — the paper's "approximate
// clustering" baseline (§III-C/D).
//
// The index is a stack of proximity graphs. Each inserted element is
// assigned a maximum layer drawn from an exponential distribution; upper
// layers form an expressway of long links for greedy descent, while
// layer 0 contains every element with denser connectivity. A query
// greedily descends from the top-layer entry point to layer 1 with beam
// width 1, then runs a best-first beam search with width ef at layer 0.
//
// Matching the paper, the default distance is Manhattan (identical to
// Hamming on the binary assignment rows). Level assignment uses a seeded
// deterministic generator so benchmark runs are reproducible.
package hnsw

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
	"repro/internal/metric"
)

// Config carries the HNSW construction parameters.
type Config struct {
	// M is the target out-degree per node on upper layers. Layer 0
	// allows 2*M links, per the original paper. Defaults to 16.
	M int
	// EfConstruction is the beam width used while inserting. Larger
	// values yield better graphs at higher build cost. Defaults to 200,
	// the datasketch default used in the paper's implementation.
	EfConstruction int
	// EfSearch is the default beam width for queries; it can be
	// overridden per call. Defaults to 50.
	EfSearch int
	// Metric is the distance function; defaults to Manhattan, matching
	// the paper's HNSW setup.
	Metric metric.Kind
	// Seed seeds the level generator. The zero value selects seed 1 so
	// a zero Config is still deterministic.
	Seed int64
	// Heuristic enables the neighbour-selection heuristic from the HNSW
	// paper (algorithm 4) instead of picking the M closest candidates.
	// The heuristic keeps a candidate only if it is closer to the query
	// than to every already-kept neighbour, improving graph diversity on
	// clustered data — exactly the regime RBAC rows live in.
	Heuristic bool
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 50
	}
	if c.Metric == 0 {
		c.Metric = metric.Manhattan
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate checks user-supplied parameter combinations.
func (c Config) Validate() error {
	if c.M < 0 || c.EfConstruction < 0 || c.EfSearch < 0 {
		return fmt.Errorf("hnsw: negative parameter (M=%d efConstruction=%d efSearch=%d)",
			c.M, c.EfConstruction, c.EfSearch)
	}
	return nil
}

// node is one element of the index with its per-layer adjacency lists.
type node struct {
	vec *bitvec.Vector
	// neighbours[l] lists the ids linked to this node at layer l.
	neighbours [][]int
}

// Index is a hierarchical navigable small world graph over bit vectors.
// It is not safe for concurrent mutation; concurrent Search calls after
// construction are safe.
type Index struct {
	cfg       Config
	dist      metric.BitFunc
	nodes     []*node
	entry     int // id of the entry point, -1 when empty
	maxLayer  int
	levelMul  float64
	rng       *rand.Rand
	dim       int
	distCalls int // cumulative distance evaluations, for the bench harness
}

// New creates an empty index. Vector dimensionality is fixed by the
// first Add.
func New(cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Index{
		cfg:      cfg,
		dist:     cfg.Metric.Bits(),
		entry:    -1,
		maxLayer: -1,
		levelMul: 1.0 / math.Log(float64(cfg.M)),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Build constructs an index over all rows in one call.
func Build(rows []*bitvec.Vector, cfg Config) (*Index, error) {
	return BuildContext(context.Background(), rows, cfg)
}

// BuildContext is Build with cooperative cancellation. The context is
// polled between insertions — each insertion is a bounded beam search
// (O(ef·M·layers) distance evaluations) — so construction over an
// organisation-scale matrix aborts promptly with ctx.Err() when the
// request driving it is cancelled, discarding the partial index.
func BuildContext(ctx context.Context, rows []*bitvec.Vector, cfg Config) (*Index, error) {
	idx, err := New(cfg)
	if err != nil {
		return nil, err
	}
	chk := ctxcheck.New(ctx, 1)
	for _, r := range rows {
		if err := chk.Err(); err != nil {
			return nil, err
		}
		if err := idx.Add(r); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// Len returns the number of indexed vectors.
func (x *Index) Len() int { return len(x.nodes) }

// DistCalls returns the cumulative number of distance evaluations made
// during construction and searches. The benchmark harness reports it to
// contrast HNSW's sublinear query cost with DBSCAN's full scans.
func (x *Index) DistCalls() int { return x.distCalls }

// ErrDimensionMismatch is returned when an added or queried vector does
// not match the index dimensionality.
var ErrDimensionMismatch = errors.New("hnsw: vector dimension mismatch")

// randomLevel draws the insertion layer: floor(-ln(U) * mL).
func (x *Index) randomLevel() int {
	u := x.rng.Float64()
	for u == 0 { // avoid +Inf
		u = x.rng.Float64()
	}
	return int(-math.Log(u) * x.levelMul)
}

// maxNeighbours is the degree bound at a layer (2M at layer 0, M above).
func (x *Index) maxNeighbours(layer int) int {
	if layer == 0 {
		return 2 * x.cfg.M
	}
	return x.cfg.M
}

// d computes the configured distance and counts the evaluation.
func (x *Index) d(a, b *bitvec.Vector) float64 {
	x.distCalls++
	return x.dist(a, b)
}

// Add inserts a vector into the index. The vector is retained by
// reference and must not be mutated afterwards.
func (x *Index) Add(v *bitvec.Vector) error {
	if len(x.nodes) == 0 {
		x.dim = v.Len()
	} else if v.Len() != x.dim {
		return fmt.Errorf("%w: got %d, index has %d", ErrDimensionMismatch, v.Len(), x.dim)
	}

	level := x.randomLevel()
	n := &node{
		vec:        v,
		neighbours: make([][]int, level+1),
	}
	id := len(x.nodes)
	x.nodes = append(x.nodes, n)

	if x.entry == -1 {
		x.entry = id
		x.maxLayer = level
		return nil
	}

	ep := x.entry
	// Greedy descent through layers above the insertion level.
	for l := x.maxLayer; l > level; l-- {
		ep = x.greedyClosest(v, ep, l)
	}

	// Beam search and linking from min(level, maxLayer) down to 0.
	startLayer := level
	if startLayer > x.maxLayer {
		startLayer = x.maxLayer
	}
	eps := []int{ep}
	for l := startLayer; l >= 0; l-- {
		found := x.searchLayer(v, eps, x.cfg.EfConstruction, l)
		selected := x.selectNeighbours(v, found, x.cfg.M)
		n.neighbours[l] = append(n.neighbours[l], selected...)
		for _, nb := range selected {
			x.link(nb, id, l)
		}
		// Seed the next layer's search with this layer's results.
		eps = eps[:0]
		for _, c := range found {
			eps = append(eps, c.id)
		}
		if len(eps) == 0 {
			eps = []int{ep}
		}
	}

	if level > x.maxLayer {
		x.maxLayer = level
		x.entry = id
	}
	return nil
}

// link adds dst to src's adjacency at the given layer, shrinking the
// list with the neighbour-selection policy when it overflows.
func (x *Index) link(src, dst, layer int) {
	n := x.nodes[src]
	n.neighbours[layer] = append(n.neighbours[layer], dst)
	limit := x.maxNeighbours(layer)
	if len(n.neighbours[layer]) <= limit {
		return
	}
	cands := make([]candidate, 0, len(n.neighbours[layer]))
	for _, nb := range n.neighbours[layer] {
		cands = append(cands, candidate{id: nb, dist: x.d(n.vec, x.nodes[nb].vec)})
	}
	n.neighbours[layer] = x.selectNeighbours(n.vec, cands, limit)
}

// greedyClosest walks layer l from ep, moving to any strictly closer
// neighbour until a local minimum is reached (beam width 1).
func (x *Index) greedyClosest(q *bitvec.Vector, ep, layer int) int {
	cur := ep
	curDist := x.d(q, x.nodes[cur].vec)
	for {
		improved := false
		for _, nb := range x.nodes[cur].neighbours[layer] {
			if dd := x.d(q, x.nodes[nb].vec); dd < curDist {
				cur, curDist = nb, dd
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the best-first beam search (algorithm 2 in the HNSW
// paper): expand the closest unexpanded candidate while it can still
// improve the worst of the current ef best results. Returns the best
// candidates sorted ascending by distance.
func (x *Index) searchLayer(q *bitvec.Vector, eps []int, ef, layer int) []candidate {
	visited := make(map[int]struct{}, ef*4)
	var frontier minHeap
	var best maxHeap

	for _, ep := range eps {
		if _, ok := visited[ep]; ok {
			continue
		}
		visited[ep] = struct{}{}
		c := candidate{id: ep, dist: x.d(q, x.nodes[ep].vec)}
		frontier.push(c)
		best.push(c)
	}

	for frontier.len() > 0 {
		cur := frontier.pop()
		if best.len() >= ef && cur.dist > best.top().dist {
			break
		}
		for _, nb := range x.nodes[cur.id].neighbours[layer] {
			if _, ok := visited[nb]; ok {
				continue
			}
			visited[nb] = struct{}{}
			dd := x.d(q, x.nodes[nb].vec)
			if best.len() < ef || dd < best.top().dist {
				c := candidate{id: nb, dist: dd}
				frontier.push(c)
				best.push(c)
				if best.len() > ef {
					best.pop()
				}
			}
		}
	}

	out := make([]candidate, best.len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = best.pop()
	}
	return out
}

// selectNeighbours reduces a candidate set to at most m ids, either by
// simple closest-first selection or by the diversity heuristic.
func (x *Index) selectNeighbours(q *bitvec.Vector, cands []candidate, m int) []int {
	sorted := make([]candidate, len(cands))
	copy(sorted, cands)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].dist < sorted[j].dist })

	if !x.cfg.Heuristic {
		if len(sorted) > m {
			sorted = sorted[:m]
		}
		out := make([]int, len(sorted))
		for i, c := range sorted {
			out[i] = c.id
		}
		return out
	}

	// Heuristic (algorithm 4): keep a candidate only if it is closer to
	// q than to any already-selected neighbour; this spreads links
	// across clusters instead of saturating one.
	out := make([]int, 0, m)
	for _, c := range sorted {
		if len(out) >= m {
			break
		}
		keep := true
		for _, s := range out {
			if x.d(x.nodes[c.id].vec, x.nodes[s].vec) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c.id)
		}
	}
	// Backfill with the closest rejected candidates if the heuristic was
	// too aggressive to reach m (keepPrunedConnections variant).
	if len(out) < m {
		chosen := make(map[int]struct{}, len(out))
		for _, s := range out {
			chosen[s] = struct{}{}
		}
		for _, c := range sorted {
			if len(out) >= m {
				break
			}
			if _, ok := chosen[c.id]; !ok {
				out = append(out, c.id)
			}
		}
	}
	return out
}

// Neighbour is one search hit.
type Neighbour struct {
	// ID is the insertion index of the vector (0-based).
	ID int
	// Dist is the distance to the query under the index metric.
	Dist float64
}

// Search returns up to k approximate nearest neighbours of q, sorted by
// ascending distance, using the configured EfSearch beam width.
func (x *Index) Search(q *bitvec.Vector, k int) ([]Neighbour, error) {
	return x.SearchEf(q, k, x.cfg.EfSearch)
}

// SearchEf is Search with an explicit beam width ef (>= k recommended).
func (x *Index) SearchEf(q *bitvec.Vector, k, ef int) ([]Neighbour, error) {
	if len(x.nodes) == 0 {
		return nil, nil
	}
	if q.Len() != x.dim {
		return nil, fmt.Errorf("%w: got %d, index has %d", ErrDimensionMismatch, q.Len(), x.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	if ef < k {
		ef = k
	}
	ep := x.entry
	for l := x.maxLayer; l >= 1; l-- {
		ep = x.greedyClosest(q, ep, l)
	}
	found := x.searchLayer(q, []int{ep}, ef, 0)
	if len(found) > k {
		found = found[:k]
	}
	out := make([]Neighbour, len(found))
	for i, c := range found {
		out[i] = Neighbour{ID: c.id, Dist: c.dist}
	}
	return out, nil
}

// SearchRadius returns all indexed vectors the search can find within
// the given distance of q (inclusive), using beam width ef. Unlike an
// exact radius scan this inherits HNSW's approximate recall.
func (x *Index) SearchRadius(q *bitvec.Vector, radius float64, ef int) ([]Neighbour, error) {
	hits, err := x.SearchEf(q, ef, ef)
	if err != nil {
		return nil, err
	}
	out := hits[:0]
	for _, h := range hits {
		if h.Dist <= radius {
			out = append(out, h)
		}
	}
	return out, nil
}
