// Package hnsw implements Hierarchical Navigable Small World graphs
// (Malkov & Yashunin, 2018) from scratch — the paper's "approximate
// clustering" baseline (§III-C/D).
//
// The index is a stack of proximity graphs. Each inserted element is
// assigned a maximum layer drawn from an exponential distribution; upper
// layers form an expressway of long links for greedy descent, while
// layer 0 contains every element with denser connectivity. A query
// greedily descends from the top-layer entry point to layer 1 with beam
// width 1, then runs a best-first beam search with width ef at layer 0.
//
// Matching the paper, the default distance is Manhattan (identical to
// Hamming on the binary assignment rows). Level assignment uses a seeded
// deterministic generator so benchmark runs are reproducible.
//
// Row storage lives in a bitmat arena whenever the metric reduces to
// Hamming on bit rows (Manhattan does): nodes are plain adjacency
// records, and every distance is an XOR+popcount sweep over contiguous
// cache-line-padded rows. Beam searches run on pooled scratch — an
// epoch-stamped visited array instead of a per-call map, heaps and
// buffers that keep their capacity — so neither construction nor
// concurrent searches allocate per call.
package hnsw

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitmat"
	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
	"repro/internal/metric"
)

// Config carries the HNSW construction parameters.
type Config struct {
	// M is the target out-degree per node on upper layers. Layer 0
	// allows 2*M links, per the original paper. Defaults to 16.
	M int
	// EfConstruction is the beam width used while inserting. Larger
	// values yield better graphs at higher build cost. Defaults to 200,
	// the datasketch default used in the paper's implementation.
	EfConstruction int
	// EfSearch is the default beam width for queries; it can be
	// overridden per call. Defaults to 50.
	EfSearch int
	// Metric is the distance function; defaults to Manhattan, matching
	// the paper's HNSW setup.
	Metric metric.Kind
	// Seed seeds the level generator. The zero value selects seed 1 so
	// a zero Config is still deterministic.
	Seed int64
	// Heuristic enables the neighbour-selection heuristic from the HNSW
	// paper (algorithm 4) instead of picking the M closest candidates.
	// The heuristic keeps a candidate only if it is closer to the query
	// than to every already-kept neighbour, improving graph diversity on
	// clustered data — exactly the regime RBAC rows live in.
	Heuristic bool
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 50
	}
	if c.Metric == 0 {
		c.Metric = metric.Manhattan
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate checks user-supplied parameter combinations.
func (c Config) Validate() error {
	if c.M < 0 || c.EfConstruction < 0 || c.EfSearch < 0 {
		return fmt.Errorf("hnsw: negative parameter (M=%d efConstruction=%d efSearch=%d)",
			c.M, c.EfConstruction, c.EfSearch)
	}
	return nil
}

// fastMetric reports whether the metric's value on bit rows equals the
// integer Hamming distance, so it can be evaluated off the bit-matrix
// arena. Manhattan over {0,1} coordinates is exactly Hamming.
func fastMetric(k metric.Kind) bool {
	return k == metric.Hamming || k == metric.Manhattan
}

// SupportsMat reports whether BuildFromMat supports the metric kind;
// the zero value counts, since it defaults to Manhattan.
func SupportsMat(k metric.Kind) bool {
	return k == 0 || fastMetric(k)
}

// node is one element of the index: its per-layer adjacency lists.
// neighbours[l] lists the edges from this node at layer l; each edge
// carries the neighbour id and the (symmetric) distance to it, so the
// overflow re-selection in link never recomputes a distance the graph
// already knows — on organisation-scale builds those recomputations
// were a quarter of all kernel time. Nodes are stored by value in one
// slice; row storage lives in the shared arena (or the vecs slice for
// exotic metrics), so inserting a node allocates no per-node box and
// distance evaluations chase no vector pointers.
type node struct {
	neighbours [][]candidate
}

// Index is a hierarchical navigable small world graph over bit vectors.
// It is not safe for concurrent mutation; concurrent Search calls after
// construction are safe (each borrows its own scratch from a pool and
// the distance counter is atomic).
type Index struct {
	cfg      Config
	dist     metric.BitFunc   // non-arena metrics only
	fast     bool             // distances evaluate off the arena
	mat      *bitmat.Matrix   // row storage when fast
	vecs     []*bitvec.Vector // row storage when !fast
	nodes    []node
	entry    int // id of the entry point, -1 when empty
	maxLayer int
	levelMul float64
	rng      *rand.Rand
	dim      int
	// distCalls counts cumulative distance evaluations, for the bench
	// harness; atomic so concurrent searches stay race-free.
	distCalls atomic.Int64
	scratch   sync.Pool // of *searchScratch
}

// New creates an empty index. Vector dimensionality is fixed by the
// first Add.
func New(cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	x := &Index{
		cfg:      cfg,
		fast:     fastMetric(cfg.Metric),
		entry:    -1,
		maxLayer: -1,
		levelMul: 1.0 / math.Log(float64(cfg.M)),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	if x.fast {
		x.mat = &bitmat.Matrix{}
	} else {
		x.dist = cfg.Metric.Bits()
	}
	return x, nil
}

// Build constructs an index over all rows in one call.
func Build(rows []*bitvec.Vector, cfg Config) (*Index, error) {
	return BuildContext(context.Background(), rows, cfg)
}

// BuildContext is Build with cooperative cancellation. The context is
// polled between insertions — each insertion is a bounded beam search
// (O(ef·M·layers) distance evaluations) — so construction over an
// organisation-scale matrix aborts promptly with ctx.Err() when the
// request driving it is cancelled, discarding the partial index.
func BuildContext(ctx context.Context, rows []*bitvec.Vector, cfg Config) (*Index, error) {
	idx, err := New(cfg)
	if err != nil {
		return nil, err
	}
	chk := ctxcheck.New(ctx, 1)
	for _, r := range rows {
		if err := chk.Err(); err != nil {
			return nil, err
		}
		if err := idx.Add(r); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// BuildFromMat constructs the index directly over the rows of a
// prebuilt bit-matrix arena, sharing its storage instead of re-packing
// per-row vectors. It produces exactly the index Build produces on the
// same rows (same seeded levels, same links). Only the arena metrics
// (Hamming, and Manhattan, which coincides with it on bit rows) are
// supported; other metrics return an error. The index retains m, and a
// later Add appends the new row to m.
func BuildFromMat(m *bitmat.Matrix, cfg Config) (*Index, error) {
	return BuildFromMatContext(context.Background(), m, cfg)
}

// BuildFromMatContext is BuildFromMat with cooperative cancellation,
// polled between insertions like BuildContext.
func BuildFromMatContext(ctx context.Context, m *bitmat.Matrix, cfg Config) (*Index, error) {
	idx, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if !idx.fast {
		return nil, fmt.Errorf("hnsw: BuildFromMat requires the Hamming or Manhattan metric")
	}
	idx.mat = m
	idx.dim = m.Cols()
	chk := ctxcheck.New(ctx, 1)
	for i := 0; i < m.Rows(); i++ {
		if err := chk.Err(); err != nil {
			return nil, err
		}
		idx.insert()
	}
	return idx, nil
}

// Len returns the number of indexed vectors.
func (x *Index) Len() int { return len(x.nodes) }

// DistCalls returns the cumulative number of distance evaluations made
// during construction and searches. The benchmark harness reports it to
// contrast HNSW's sublinear query cost with DBSCAN's full scans.
func (x *Index) DistCalls() int { return int(x.distCalls.Load()) }

// ErrDimensionMismatch is returned when an added or queried vector does
// not match the index dimensionality.
var ErrDimensionMismatch = errors.New("hnsw: vector dimension mismatch")

// randomLevel draws the insertion layer: floor(-ln(U) * mL).
func (x *Index) randomLevel() int {
	u := x.rng.Float64()
	for u == 0 { // avoid +Inf
		u = x.rng.Float64()
	}
	return int(-math.Log(u) * x.levelMul)
}

// maxNeighbours is the degree bound at a layer (2M at layer 0, M above).
func (x *Index) maxNeighbours(layer int) int {
	if layer == 0 {
		return 2 * x.cfg.M
	}
	return x.cfg.M
}

// query addresses one search query's row storage: an arena row id when
// the query is itself an indexed row, the raw query words for an
// external fast-metric vector, or the vector for exotic metrics. On the
// fast path norm carries the query's popcount, which lower-bounds its
// Hamming distance to any row by |‖q‖−‖r‖| and lets beam searches skip
// provably-discarded candidates without touching their words.
type query struct {
	row   int // arena row id; -1 for external queries
	norm  int // query popcount; valid on the fast path only
	words []uint64
	vec   *bitvec.Vector
}

func (x *Index) queryOf(v *bitvec.Vector) query {
	if x.fast {
		return query{row: -1, norm: v.Count(), words: v.Words()}
	}
	return query{row: -1, vec: v}
}

// queryOfRow addresses indexed row id as a query, so distances evaluate
// row-to-row off the arena on the fast path.
func (x *Index) queryOfRow(id int) query {
	if x.fast {
		return query{row: id, norm: x.mat.Norm(id)}
	}
	return query{row: -1, vec: x.vecs[id]}
}

// qd evaluates the distance from a query to node j and counts it.
func (x *Index) qd(q query, j int) float64 {
	x.distCalls.Add(1)
	if x.fast {
		if q.row >= 0 {
			return float64(x.mat.Hamming(q.row, j))
		}
		return float64(x.mat.HammingWords(q.words, j))
	}
	return x.dist(q.vec, x.vecs[j])
}

// nd evaluates the distance between two indexed rows and counts it.
func (x *Index) nd(i, j int) float64 {
	x.distCalls.Add(1)
	if x.fast {
		return float64(x.mat.Hamming(i, j))
	}
	return x.dist(x.vecs[i], x.vecs[j])
}

// searchScratch is the reusable state of beam searches: an epoch-stamped
// visited array replaces the per-call map, and the heaps and copy
// buffers keep their capacity across calls. Construction threads one
// scratch through every insertion; searches borrow one from the pool, so
// concurrent Search calls stay independent and allocation-free.
type searchScratch struct {
	visited  []uint32
	epoch    uint32
	frontier minHeap
	best     maxHeap
	result   []candidate
	eps      []int
	adj      []candidate
	sorted   []candidate
	selected []candidate
	linkSel  []candidate
}

func (x *Index) getScratch() *searchScratch {
	if s, ok := x.scratch.Get().(*searchScratch); ok {
		return s
	}
	return &searchScratch{}
}

func (x *Index) putScratch(s *searchScratch) { x.scratch.Put(s) }

// visit re-arms the visited array for a fresh search over n nodes and
// returns the epoch stamp marking this search's members.
func (s *searchScratch) visit(n int) uint32 {
	if len(s.visited) < n {
		s.visited = make([]uint32, n+n/2+8)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: flush stale stamps once per 2^32 searches
		clear(s.visited)
		s.epoch = 1
	}
	return s.epoch
}

// Add inserts a vector into the index. On the arena path the row is
// copied into the matrix; otherwise the vector is retained by reference
// and must not be mutated afterwards.
func (x *Index) Add(v *bitvec.Vector) error {
	if len(x.nodes) == 0 {
		x.dim = v.Len()
	} else if v.Len() != x.dim {
		return fmt.Errorf("%w: got %d, index has %d", ErrDimensionMismatch, v.Len(), x.dim)
	}
	if x.fast {
		x.mat.AppendVector(v)
	} else {
		x.vecs = append(x.vecs, v)
	}
	x.insert()
	return nil
}

// insert wires node id = len(x.nodes) into the graph. Its row storage
// (arena row id, or vecs entry) must already be in place.
func (x *Index) insert() {
	level := x.randomLevel()
	id := len(x.nodes)
	x.nodes = append(x.nodes, node{neighbours: make([][]candidate, level+1)})

	if x.entry == -1 {
		x.entry = id
		x.maxLayer = level
		return
	}

	s := x.getScratch()
	defer x.putScratch(s)
	q := x.queryOfRow(id)

	ep := x.entry
	// Greedy descent through layers above the insertion level.
	for l := x.maxLayer; l > level; l-- {
		ep = x.greedyClosest(q, ep, l)
	}

	// Beam search and linking from min(level, maxLayer) down to 0.
	startLayer := level
	if startLayer > x.maxLayer {
		startLayer = x.maxLayer
	}
	eps := append(s.eps[:0], ep)
	for l := startLayer; l >= 0; l-- {
		found := x.searchLayer(q, eps, x.cfg.EfConstruction, l, s)
		s.selected = x.selectNeighboursInto(s.selected[:0], found, x.cfg.M, s)
		// The adjacency list is retained, so it gets its own exact-size
		// backing; the scratch buffer is free for the link calls below.
		nbs := make([]candidate, len(s.selected))
		copy(nbs, s.selected)
		x.nodes[id].neighbours[l] = nbs
		for _, nb := range nbs {
			// The edge distance travels with the back-link: Hamming is
			// symmetric, so d(nb, id) is the already-measured nb.dist.
			x.link(nb.id, id, l, nb.dist, s)
		}
		// Seed the next layer's search with this layer's results.
		eps = eps[:0]
		for _, c := range found {
			eps = append(eps, c.id)
		}
		if len(eps) == 0 {
			eps = append(eps, ep)
		}
	}
	s.eps = eps

	if level > x.maxLayer {
		x.maxLayer = level
		x.entry = id
	}
}

// link adds dst (at the given distance from src) to src's adjacency at
// the given layer, shrinking the list in place with the
// neighbour-selection policy when it overflows. The stored edge
// distances make the overflow re-selection free of distance
// evaluations.
func (x *Index) link(src, dst, layer int, dist float64, s *searchScratch) {
	n := &x.nodes[src]
	n.neighbours[layer] = append(n.neighbours[layer], candidate{id: dst, dist: dist})
	limit := x.maxNeighbours(layer)
	if len(n.neighbours[layer]) <= limit {
		return
	}
	s.linkSel = x.selectNeighboursInto(s.linkSel[:0], n.neighbours[layer], limit, s)
	// The overflowed list has capacity limit+1 >= the selection, so the
	// shrink reuses its backing.
	n.neighbours[layer] = append(n.neighbours[layer][:0], s.linkSel...)
}

// greedyClosest walks layer l from ep, moving to any strictly closer
// neighbour until a local minimum is reached (beam width 1).
func (x *Index) greedyClosest(q query, ep, layer int) int {
	cur := ep
	curDist := x.qd(q, cur)
	for {
		improved := false
		for _, e := range x.nodes[cur].neighbours[layer] {
			nb := e.id
			// Same norm-gap lower bound as searchLayer: a neighbour that
			// provably cannot improve curDist is skipped unmeasured.
			if x.fast {
				if lb := q.norm - x.mat.Norm(nb); float64(lb) >= curDist || float64(-lb) >= curDist {
					continue
				}
			}
			if dd := x.qd(q, nb); dd < curDist {
				cur, curDist = nb, dd
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the best-first beam search (algorithm 2 in the HNSW
// paper): expand the closest unexpanded candidate while it can still
// improve the worst of the current ef best results. Returns the best
// candidates sorted ascending by distance; the slice is owned by the
// scratch and valid until its next searchLayer call.
func (x *Index) searchLayer(q query, eps []int, ef, layer int, s *searchScratch) []candidate {
	epoch := s.visit(len(x.nodes))
	s.frontier = s.frontier[:0]
	s.best = s.best[:0]

	for _, ep := range eps {
		if s.visited[ep] == epoch {
			continue
		}
		s.visited[ep] = epoch
		c := candidate{id: ep, dist: x.qd(q, ep)}
		s.frontier.push(c)
		s.best.push(c)
	}

	for s.frontier.len() > 0 {
		cur := s.frontier.pop()
		if s.best.len() >= ef && cur.dist > s.best.top().dist {
			break
		}
		for _, e := range x.nodes[cur.id].neighbours[layer] {
			nb := e.id
			if s.visited[nb] == epoch {
				continue
			}
			s.visited[nb] = epoch
			// A full beam only admits dd < worst, and the norm gap
			// lower-bounds the Hamming distance, so a candidate whose gap
			// already reaches the worst accepted distance is discarded
			// without its popcount. Results are bit-identical with and
			// without the skip.
			if x.fast && s.best.len() >= ef {
				if lb := q.norm - x.mat.Norm(nb); float64(lb) >= s.best.top().dist || float64(-lb) >= s.best.top().dist {
					continue
				}
			}
			dd := x.qd(q, nb)
			if s.best.len() < ef || dd < s.best.top().dist {
				c := candidate{id: nb, dist: dd}
				s.frontier.push(c)
				s.best.push(c)
				if s.best.len() > ef {
					s.best.pop()
				}
			}
		}
	}

	if cap(s.result) < s.best.len() {
		s.result = make([]candidate, s.best.len())
	}
	s.result = s.result[:s.best.len()]
	for i := len(s.result) - 1; i >= 0; i-- {
		s.result[i] = s.best.pop()
	}
	return s.result
}

// selectNeighboursInto reduces a candidate set to at most m edges
// appended onto dst (which must be empty), either by simple
// closest-first selection or by the diversity heuristic. Each kept
// candidate retains its distance, so callers can store it on the edge.
// The ordered copy lives in the scratch sorted buffer, so the call
// allocates only when a buffer grows past its high-water capacity.
func (x *Index) selectNeighboursInto(dst []candidate, cands []candidate, m int, s *searchScratch) []candidate {
	sorted := append(s.sorted[:0], cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].dist < sorted[j].dist })
	s.sorted = sorted

	if !x.cfg.Heuristic {
		if len(sorted) > m {
			sorted = sorted[:m]
		}
		return append(dst, sorted...)
	}

	// Heuristic (algorithm 4): keep a candidate only if it is closer to
	// q than to any already-selected neighbour; this spreads links
	// across clusters instead of saturating one.
	for _, c := range sorted {
		if len(dst) >= m {
			break
		}
		keep := true
		for _, sel := range dst {
			if x.nd(c.id, sel.id) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			dst = append(dst, c)
		}
	}
	// Backfill with the closest rejected candidates if the heuristic was
	// too aggressive to reach m (keepPrunedConnections variant).
	if len(dst) < m {
		for _, c := range sorted {
			if len(dst) >= m {
				break
			}
			if !containsEdge(dst, c.id) {
				dst = append(dst, c)
			}
		}
	}
	return dst
}

// Neighbour is one search hit.
type Neighbour struct {
	// ID is the insertion index of the vector (0-based).
	ID int
	// Dist is the distance to the query under the index metric.
	Dist float64
}

// Search returns up to k approximate nearest neighbours of q, sorted by
// ascending distance, using the configured EfSearch beam width.
func (x *Index) Search(q *bitvec.Vector, k int) ([]Neighbour, error) {
	return x.SearchEf(q, k, x.cfg.EfSearch)
}

// SearchEf is Search with an explicit beam width ef (>= k recommended).
func (x *Index) SearchEf(q *bitvec.Vector, k, ef int) ([]Neighbour, error) {
	if len(x.nodes) == 0 {
		return nil, nil
	}
	if q.Len() != x.dim {
		return nil, fmt.Errorf("%w: got %d, index has %d", ErrDimensionMismatch, q.Len(), x.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	return x.searchEf(x.queryOf(q), k, ef), nil
}

// SearchEfRow is SearchEf for a query that is itself an indexed row,
// addressed by insertion id: on the arena path distances evaluate
// row-to-row with no query materialisation. The row itself appears in
// its own results (at distance 0) exactly as it does when passed to
// SearchEf as a vector.
func (x *Index) SearchEfRow(row, k, ef int) ([]Neighbour, error) {
	if row < 0 || row >= len(x.nodes) {
		return nil, fmt.Errorf("hnsw: row %d out of range [0,%d)", row, len(x.nodes))
	}
	if k <= 0 {
		return nil, nil
	}
	return x.searchEf(x.queryOfRow(row), k, ef), nil
}

func (x *Index) searchEf(q query, k, ef int) []Neighbour {
	if ef < k {
		ef = k
	}
	s := x.getScratch()
	defer x.putScratch(s)
	ep := x.entry
	for l := x.maxLayer; l >= 1; l-- {
		ep = x.greedyClosest(q, ep, l)
	}
	s.eps = append(s.eps[:0], ep)
	found := x.searchLayer(q, s.eps, ef, 0, s)
	if len(found) > k {
		found = found[:k]
	}
	out := make([]Neighbour, len(found))
	for i, c := range found {
		out[i] = Neighbour{ID: c.id, Dist: c.dist}
	}
	return out
}

// SearchRadius returns all indexed vectors the search can find within
// the given distance of q (inclusive), using beam width ef. Unlike an
// exact radius scan this inherits HNSW's approximate recall.
func (x *Index) SearchRadius(q *bitvec.Vector, radius float64, ef int) ([]Neighbour, error) {
	hits, err := x.SearchEf(q, ef, ef)
	if err != nil {
		return nil, err
	}
	return radiusFilter(hits, radius), nil
}

// SearchRadiusRow is SearchRadius for an indexed row id; the §III-D
// grouping loop queries every row this way, saving one query pack per
// row and keeping distances on the pairwise arena kernel.
func (x *Index) SearchRadiusRow(row int, radius float64, ef int) ([]Neighbour, error) {
	hits, err := x.SearchEfRow(row, ef, ef)
	if err != nil {
		return nil, err
	}
	return radiusFilter(hits, radius), nil
}

func radiusFilter(hits []Neighbour, radius float64) []Neighbour {
	out := hits[:0]
	for _, h := range hits {
		if h.Dist <= radius {
			out = append(out, h)
		}
	}
	return out
}
