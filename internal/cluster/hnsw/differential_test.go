package hnsw_test

import (
	"context"
	"testing"

	"repro/internal/testkit"
)

// TestAgainstOracle: HNSW is approximate, so the harness checks two
// things — pair recall against the brute-force oracle stays above the
// documented floor (derived from results/recall.txt), and the radius
// grouping never invents a pair the oracle does not have, because
// SearchRadius filters candidates by true distance. The full sweep
// lives in internal/testkit; this guard makes an hnsw-only change fail
// in this package's own tests.
func TestAgainstOracle(t *testing.T) {
	ctx := context.Background()
	b := testkit.BackendByName("hnsw")
	if b == nil {
		t.Fatal("hnsw backend missing from the testkit registry")
	}
	if b.Exact || b.MinRecall <= 0 {
		t.Fatalf("hnsw must be registered as approximate with a recall floor, got exact=%v floor=%v", b.Exact, b.MinRecall)
	}
	corpora := testkit.Corpora(false)
	for _, c := range corpora[:8] {
		failures, err := testkit.RunCorpus(ctx, c, []testkit.Backend{*b})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range failures {
			t.Error(f.Error())
		}
	}
}
