package rolediet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/matrix"
)

// slowRows returns a dense workload whose similar-mode co-occurrence
// pass takes long enough that a mid-run cancel lands reliably.
func slowRows(t *testing.T) Rows {
	t.Helper()
	m, err := gen.Matrix(gen.MatrixParams{Rows: 2000, Cols: 1024, Density: 0.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return Rows(m.Rows)
}

func waitCanceled(t *testing.T, name string, done <-chan error) {
	t.Helper()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s = %v, want context.Canceled", name, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not return within 30s of cancellation", name)
	}
}

func TestGroupsContextAlreadyCanceled(t *testing.T) {
	m, err := gen.Matrix(gen.MatrixParams{Rows: 8, Cols: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, k := range []int{0, 2} {
		if _, err := GroupsContext(ctx, Rows(m.Rows), Options{Threshold: k}); !errors.Is(err, context.Canceled) {
			t.Fatalf("GroupsContext(threshold=%d) on canceled ctx = %v, want context.Canceled", k, err)
		}
	}
}

func TestGroupsContextCanceledMidRun(t *testing.T) {
	rows := slowRows(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(time.Millisecond, cancel)

	done := make(chan error, 1)
	go func() {
		_, err := GroupsContext(ctx, rows, Options{Threshold: 2})
		done <- err
	}()
	waitCanceled(t, "GroupsContext", done)
}

func TestGroupsCSRContextCanceledMidRun(t *testing.T) {
	rows := slowRows(t)
	bm, err := matrix.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	csr := matrix.CSRFromDense(bm)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(time.Millisecond, cancel)

	done := make(chan error, 1)
	go func() {
		_, err := GroupsCSRContext(ctx, csr, Options{Threshold: 2})
		done <- err
	}()
	waitCanceled(t, "GroupsCSRContext", done)
}

func TestGroupsParallelContextCanceledMidRun(t *testing.T) {
	rows := slowRows(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(time.Millisecond, cancel)

	done := make(chan error, 1)
	go func() {
		_, err := GroupsParallelContext(ctx, rows, Options{Threshold: 2}, 4)
		done <- err
	}()
	waitCanceled(t, "GroupsParallelContext", done)
}

func TestGroupsContextBackgroundMatchesGroups(t *testing.T) {
	m, err := gen.Matrix(gen.MatrixParams{Rows: 300, Cols: 128, ClusterProportion: 0.4, MaxClusterSize: 5, SimilarNoise: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 2} {
		plain, err := Groups(Rows(m.Rows), Options{Threshold: k})
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := GroupsContext(context.Background(), Rows(m.Rows), Options{Threshold: k})
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Groups) != len(ctxed.Groups) {
			t.Fatalf("threshold %d: group counts differ: %d vs %d", k, len(plain.Groups), len(ctxed.Groups))
		}
	}
}
