package rolediet

import "sort"

// Pair is one verified role pair within the similarity threshold.
type Pair struct {
	// A and B are role indices with A < B.
	A, B int
	// Distance is the exact Hamming distance between the two rows
	// (the number of differing users/permissions).
	Distance int
}

// Pairs returns every role pair within Hamming distance k, with exact
// distances, sorted by ascending distance then (A, B). Unlike Groups —
// which chains pairs into connected components — this is the raw
// pairwise relation, the right granularity for review tooling that
// wants to show an administrator *how* similar two roles are before a
// merge decision (the per-pair view of the paper's class-5 findings).
func Pairs(rows Rows, k int) ([]Pair, error) {
	if k < 0 {
		return nil, &thresholdError{k: k}
	}
	if len(rows) == 0 {
		return nil, nil
	}
	width := rows[0].Len()
	for i, r := range rows {
		if r.Len() != width {
			return nil, &rowLenError{index: i, got: r.Len(), want: width}
		}
	}

	n := len(rows)
	norms := make([]int, n)
	for i, r := range rows {
		norms[i] = r.Count()
	}
	colIndex := make([][]int32, width)
	for i, r := range rows {
		r.ForEach(func(j int) bool {
			colIndex[j] = append(colIndex[j], int32(i))
			return true
		})
	}

	var out []Pair
	counts := make([]int32, n)
	touched := make([]int32, 0, 64)
	for i := 0; i < n; i++ {
		rows[i].ForEach(func(u int) bool {
			for _, j := range colIndex[u] {
				if int(j) <= i {
					continue
				}
				if counts[j] == 0 {
					touched = append(touched, j)
				}
				counts[j]++
			}
			return true
		})
		ni := norms[i]
		for _, j := range touched {
			g := int(counts[j])
			counts[j] = 0
			if d := ni + norms[j] - 2*g; d <= k {
				out = append(out, Pair{A: i, B: int(j), Distance: d})
			}
		}
		touched = touched[:0]
	}

	// Pairs sharing no columns: distance is the norm sum.
	smalls := make([]int, 0)
	for i, nrm := range norms {
		if nrm <= k {
			smalls = append(smalls, i)
		}
	}
	for ai := 0; ai < len(smalls); ai++ {
		for bi := ai + 1; bi < len(smalls); bi++ {
			a, b := smalls[ai], smalls[bi]
			if norms[a]+norms[b] > k {
				continue
			}
			// Co-occurring small pairs were already emitted above; they
			// share at least one column iff their intersection count is
			// positive, equivalently distance < norm sum.
			if rows[a].IntersectionCount(rows[b]) > 0 {
				continue
			}
			out = append(out, Pair{A: a, B: b, Distance: norms[a] + norms[b]})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}

// thresholdError mirrors Options.Validate's message for the pairs API.
type thresholdError struct {
	k int
}

func (e *thresholdError) Error() string {
	return "rolediet: negative threshold"
}
