package rolediet

import "fmt"

// CooccurrenceMatrix materialises the paper's matrix C for a small set
// of roles (§III-C): C[i][j] = g(i,j), the number of user co-occurrences
// between roles i and j, for i ≠ j; C[i][i] = |Rⁱ|, the role's norm.
//
// This is the didactic O(r²) form used in the worked example and the
// unit tests; the production path in Groups never builds it, which is
// the subject of the co-occurrence ablation benchmark.
func CooccurrenceMatrix(rows Rows) [][]int {
	n := len(rows)
	c := make([][]int, n)
	for i := range c {
		c[i] = make([]int, n)
		c[i][i] = rows[i].Count()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g := rows[i].IntersectionCount(rows[j])
			c[i][j] = g
			c[j][i] = g
		}
	}
	return c
}

// Indicator evaluates the paper's indicator function I(i,j) on a
// co-occurrence matrix: 1 iff |Rⁱ| = g(i,j) = |Rʲ| with i ≠ j, meaning
// the two roles can be combined because they contain exactly the same
// users.
func Indicator(c [][]int, i, j int) (int, error) {
	n := len(c)
	if i < 0 || i >= n || j < 0 || j >= n {
		return 0, fmt.Errorf("rolediet: indicator index (%d,%d) outside %dx%d matrix", i, j, n, n)
	}
	if i == j {
		return 0, nil
	}
	if c[i][i] == c[i][j] && c[i][j] == c[j][j] {
		return 1, nil
	}
	return 0, nil
}

// GroupsFromIndicator derives the exact role groups from a co-occurrence
// matrix by evaluating the indicator over all pairs — the literal
// formulation from the paper, used as an oracle in tests.
func GroupsFromIndicator(c [][]int) [][]int {
	n := len(c)
	uf := newUnionFind(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ind, _ := Indicator(c, i, j); ind == 1 {
				uf.union(i, j)
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		byRoot[uf.find(i)] = append(byRoot[uf.find(i)], i)
	}
	var groups [][]int
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	sortGroups(groups)
	return groups
}
