package rolediet

import (
	"context"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/ctxcheck"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// GroupsParallel is Groups with the co-occurrence pass fanned out over
// worker goroutines. Results are identical to the serial version; only
// wall-clock time changes.
//
// Parallelisation strategy: the inverted index is built with the same
// two-pass deterministic layout as the serial path (workers share the
// counting and fill passes over disjoint row chunks), then the role
// range is split into contiguous chunks. Each worker owns a pooled
// co-occurrence scratch array and emits the qualifying pairs for its
// chunk; pairs are merged into one union-find at the end. The
// pair-emission phase dominates the runtime, so on a multi-core
// machine the speedup approaches the worker count on large matrices;
// on a single-core machine the fan-out costs a few percent overhead
// (see BenchmarkAblationParallel). Workers <= 0 selects GOMAXPROCS.
func GroupsParallel(rows Rows, opts Options, workers int) (*Result, error) {
	return GroupsParallelContext(context.Background(), rows, opts, workers)
}

// GroupsParallelContext is GroupsParallel with cooperative
// cancellation. Each worker polls the context independently (checkers
// are not shared, so the fan-out stays race-free) and abandons its
// chunk once cancelled; the merge step then discards all partial work
// and returns ctx.Err().
func GroupsParallelContext(ctx context.Context, rows Rows, opts Options, workers int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return &Result{}, nil
	}
	width := rows[0].Len()
	for i, r := range rows {
		if r.Len() != width {
			return nil, &rowLenError{index: i, got: r.Len(), want: width}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := bitmat.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return GroupsMatParallelContext(ctx, m, opts, workers)
}

// GroupsMatParallel is GroupsParallel over a prebuilt bit-matrix arena.
func GroupsMatParallel(m *bitmat.Matrix, opts Options, workers int) (*Result, error) {
	return GroupsMatParallelContext(context.Background(), m, opts, workers)
}

// GroupsMatParallelContext runs the parallel grouping directly over a
// prebuilt arena, sharing its precomputed norms and contiguous row
// storage with the other backends.
func GroupsMatParallelContext(ctx context.Context, m *bitmat.Matrix, opts Options, workers int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if m.Rows() == 0 {
		return &Result{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Threshold == 0 && !opts.DisableExactHashFastPath {
		// The hash fast path is already near-linear and memory-bound;
		// run it serially.
		return GroupsMatContext(ctx, m, opts)
	}
	n := m.Rows()
	norms := make([]int, n)
	for i, v := range m.Norms() {
		norms[i] = int(v)
	}
	return similarGroupsShared(ctx, n, m.Cols(), norms, matRowCols(m), opts.Threshold, workers, opts.Progress)
}

// GroupsCSRParallel is GroupsCSR with the co-occurrence pass fanned
// out exactly like GroupsParallel; results are identical to the serial
// CSR run. Workers <= 0 selects GOMAXPROCS.
func GroupsCSRParallel(c *matrix.CSR, opts Options, workers int) (*Result, error) {
	return GroupsCSRParallelContext(context.Background(), c, opts, workers)
}

// GroupsCSRParallelContext is GroupsCSRParallel with cooperative
// cancellation, mirroring GroupsParallelContext.
func GroupsCSRParallelContext(ctx context.Context, c *matrix.CSR, opts Options, workers int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if c.Rows() == 0 {
		return &Result{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Threshold == 0 && !opts.DisableExactHashFastPath {
		return GroupsCSRContext(ctx, c, opts)
	}
	n := c.Rows()
	norms := make([]int, n)
	for i := 0; i < n; i++ {
		norms[i] = c.RowSum(i)
	}
	rowCols := func(i int, emit func(col int)) {
		for _, j := range c.RowCols(i) {
			emit(j)
		}
	}
	return similarGroupsShared(ctx, n, c.Cols(), norms, rowCols, opts.Threshold, workers, opts.Progress)
}

// rowLenError mirrors the serial validation error while keeping fmt
// off the validation loop: the message is only formatted if someone
// actually reads it.
type rowLenError struct {
	index, got, want int
}

func (e *rowLenError) Error() string {
	return fmt.Sprintf("rolediet: row %d has length %d, want %d", e.index, e.got, e.want)
}

// pair is one qualifying (i, j) role pair found by a worker.
type pair struct {
	a, b int32
}

// similarGroupsShared is the thresholded grouping pass shared by the
// dense and CSR parallel entry points: rows are abstracted behind the
// rowCols accessor, so the inverted index, chunked fan-out, scratch
// pooling and merge logic exist once.
func similarGroupsShared(ctx context.Context, n, width int, norms []int, rowCols func(i int, emit func(col int)), k, workers int, progFn func(done, total int)) (*Result, error) {
	workers = parallel.Workers(workers, n)
	chunks := parallel.SplitRange(n, workers)
	colIndex := buildColIndex(n, width, len(chunks), rowCols)
	prog := parallel.NewProgress(progFn, n, len(chunks))

	// Each worker processes a contiguous chunk of role indices and
	// collects qualifying pairs locally; no shared mutable state.
	pairLists := make([][]pair, len(chunks))
	examined := make([]int, len(chunks))
	err := parallel.ForEachChunk(ctx, chunks, groupStride, func(w int, c parallel.Chunk, chk *ctxcheck.Checker) error {
		s := getScratch(n)
		counts, touched := s.counts, s.touched
		tick := prog.Ticker(w, groupStride)
		var local []pair
		pairs := 0
		// One tick per set column: each expands a full posting list,
		// so per-tick work is substantial and cancellation stays
		// prompt. After a failed tick the expand callback goes inert,
		// so the remainder of the row is a cheap no-op walk. expand is
		// hoisted out of the row loop (row/tickErr flow through
		// captured variables) so the closure is allocated once per
		// chunk, not once per row.
		var tickErr error
		row := 0
		expand := func(u int) {
			if tickErr != nil {
				return
			}
			if tickErr = chk.Tick(); tickErr != nil {
				return
			}
			tick.Tick(row - c.Lo)
			for _, j := range colIndex[u] {
				if int(j) <= row {
					continue
				}
				if counts[j] == 0 {
					touched = append(touched, j)
				}
				counts[j]++
			}
		}
		for i := c.Lo; i < c.Hi; i++ {
			row = i
			rowCols(i, expand)
			if tickErr != nil {
				// Abandon the chunk, dropping the scratch rather than
				// pooling it: counts still holds nonzero residue.
				return tickErr
			}
			ni := norms[i]
			for _, j := range touched {
				g := int(counts[j])
				counts[j] = 0
				pairs++
				// Hamming(i,j) = |Ri| + |Rj| - 2 g(i,j).
				if ni+norms[j]-2*g <= k {
					local = append(local, pair{a: int32(i), b: j})
				}
			}
			touched = touched[:0]
		}
		tick.Flush(c.Len())
		s.touched = touched
		putScratch(s)
		pairLists[w] = local
		examined[w] = pairs
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Serial merge. Chunks are visited in order, so PairsExamined and
	// the union sequence match the serial pass exactly.
	uf := newUnionFind(n)
	total := 0
	for w, list := range pairLists {
		total += examined[w]
		for _, p := range list {
			uf.union(int(p.a), int(p.b))
		}
	}

	// Norm-bucket pass for pairs sharing no columns (cheap, serial).
	bucketByNorm := make([][]int, k+1)
	for i, nrm := range norms {
		if nrm <= k {
			bucketByNorm[nrm] = append(bucketByNorm[nrm], i)
		}
	}
	for na := 0; na <= k; na++ {
		for nb := na; na+nb <= k; nb++ {
			joinBuckets(uf, bucketByNorm[na], bucketByNorm[nb], na == nb)
		}
	}

	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		byRoot[uf.find(i)] = append(byRoot[uf.find(i)], i)
	}
	var groups [][]int
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	sortGroups(groups)
	prog.Finish()
	return &Result{Groups: groups, PairsExamined: total}, nil
}
