package rolediet

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/ctxcheck"
)

// GroupsParallel is Groups with the co-occurrence pass fanned out over
// worker goroutines. Results are identical to the serial version; only
// wall-clock time changes.
//
// Parallelisation strategy: the inverted index is built once (serial,
// cheap), then the role range is split into contiguous chunks. Each
// worker owns a private co-occurrence scratch array and emits the
// qualifying pairs for its chunk; pairs are merged into one union-find
// at the end. The pair-emission phase dominates the runtime, so on a
// multi-core machine the speedup approaches the worker count on large
// matrices; on a single-core machine the fan-out costs ~10% overhead
// (see BenchmarkAblationParallel). Workers <= 0 selects GOMAXPROCS.
func GroupsParallel(rows Rows, opts Options, workers int) (*Result, error) {
	return GroupsParallelContext(context.Background(), rows, opts, workers)
}

// GroupsParallelContext is GroupsParallel with cooperative
// cancellation. Each worker polls the context independently (checkers
// are not shared, so the fan-out stays race-free) and abandons its
// chunk once cancelled; the merge step then discards all partial work
// and returns ctx.Err().
func GroupsParallelContext(ctx context.Context, rows Rows, opts Options, workers int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return &Result{}, nil
	}
	width := rows[0].Len()
	for i, r := range rows {
		if r.Len() != width {
			return nil, &rowLenError{index: i, got: r.Len(), want: width}
		}
	}
	chk := ctxcheck.New(ctx, 1024)
	if err := chk.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Threshold == 0 && !opts.DisableExactHashFastPath {
		// The hash fast path is already near-linear and memory-bound;
		// run it serially.
		return exactGroups(chk, newProgressTicker(opts.Progress, len(rows)), rows)
	}
	return similarGroupsParallel(ctx, rows, opts.Threshold, workers)
}

// rowLenError mirrors the serial validation error without fmt in the
// hot path.
type rowLenError struct {
	index, got, want int
}

func (e *rowLenError) Error() string {
	return "rolediet: row length mismatch in parallel run"
}

// pair is one qualifying (i, j) role pair found by a worker.
type pair struct {
	a, b int32
}

func similarGroupsParallel(ctx context.Context, rows Rows, k, workers int) (*Result, error) {
	n := len(rows)
	norms := make([]int, n)
	for i, r := range rows {
		norms[i] = r.Count()
	}
	width := rows[0].Len()
	colIndex := make([][]int32, width)
	for i, r := range rows {
		r.ForEach(func(j int) bool {
			colIndex[j] = append(colIndex[j], int32(i))
			return true
		})
	}

	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Each worker processes a contiguous chunk of role indices and
	// collects qualifying pairs locally; no shared mutable state.
	chunks := splitRange(n, workers)
	pairLists := make([][]pair, len(chunks))
	examined := make([]int, len(chunks))

	var wg sync.WaitGroup
	for wi, ch := range chunks {
		wi, ch := wi, ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Private checker per worker: Checker is not safe for
			// concurrent use, and independent polling means every worker
			// stops within its own stride of a cancellation.
			chk := ctxcheck.New(ctx, 1024)
			counts := make([]int32, n)
			touched := make([]int32, 0, 64)
			var local []pair
			pairs := 0
			for i := ch.lo; i < ch.hi; i++ {
				var tickErr error
				rows[i].ForEach(func(u int) bool {
					if tickErr = chk.Tick(); tickErr != nil {
						return false
					}
					for _, j := range colIndex[u] {
						if int(j) <= i {
							continue
						}
						if counts[j] == 0 {
							touched = append(touched, j)
						}
						counts[j]++
					}
					return true
				})
				if tickErr != nil {
					// Abandon the chunk; the merge below sees ctx.Err()
					// and discards every worker's partial pairs.
					return
				}
				ni := norms[i]
				for _, j := range touched {
					g := int(counts[j])
					counts[j] = 0
					pairs++
					if ni+norms[j]-2*g <= k {
						local = append(local, pair{a: int32(i), b: j})
					}
				}
				touched = touched[:0]
			}
			pairLists[wi] = local
			examined[wi] = pairs
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	uf := newUnionFind(n)
	total := 0
	for wi, list := range pairLists {
		total += examined[wi]
		for _, p := range list {
			uf.union(int(p.a), int(p.b))
		}
	}

	// Norm-bucket pass for pairs sharing no columns (cheap, serial).
	bucketByNorm := make([][]int, k+1)
	for i, nrm := range norms {
		if nrm <= k {
			bucketByNorm[nrm] = append(bucketByNorm[nrm], i)
		}
	}
	for na := 0; na <= k; na++ {
		for nb := na; na+nb <= k; nb++ {
			joinBuckets(uf, bucketByNorm[na], bucketByNorm[nb], na == nb)
		}
	}

	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		byRoot[uf.find(i)] = append(byRoot[uf.find(i)], i)
	}
	var groups [][]int
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	sortGroups(groups)
	return &Result{Groups: groups, PairsExamined: total}, nil
}

// chunk is a half-open index range [lo, hi).
type chunk struct {
	lo, hi int
}

// splitRange divides [0, n) into at most parts contiguous chunks of
// near-equal size.
func splitRange(n, parts int) []chunk {
	if parts > n {
		parts = n
	}
	out := make([]chunk, 0, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for p := 0; p < parts; p++ {
		size := base
		if p < rem {
			size++
		}
		out = append(out, chunk{lo: lo, hi: lo + size})
		lo += size
	}
	return out
}
