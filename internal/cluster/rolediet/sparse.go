package rolediet

import (
	"context"

	"repro/internal/ctxcheck"
	"repro/internal/matrix"
)

// GroupsCSR runs the Role Diet algorithm directly over a compressed
// sparse row matrix. Semantics are identical to Groups on the dense
// rows: exact groups at Threshold 0, chained Hamming-<=k groups above.
//
// This is the variant that scales to the paper's organisation-size
// dataset (§IV-B): the dense RUAM/RPAM would need hundreds of megabytes
// to gigabytes, while CSR plus the inverted index stay proportional to
// the number of assignment edges.
func GroupsCSR(c *matrix.CSR, opts Options) (*Result, error) {
	return GroupsCSRContext(context.Background(), c, opts)
}

// GroupsCSRContext is GroupsCSR with cooperative cancellation, polled
// every few thousand rows / posting-list expansions.
func GroupsCSRContext(ctx context.Context, c *matrix.CSR, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if c.Rows() == 0 {
		return &Result{}, nil
	}
	chk := ctxcheck.New(ctx, groupStride)
	if err := chk.Err(); err != nil {
		return nil, err
	}
	prog := newProgressTicker(opts.Progress, c.Rows())
	if opts.Threshold == 0 && !opts.DisableExactHashFastPath {
		return exactGroupsCSR(chk, prog, c)
	}
	return similarGroupsCSR(chk, prog, c, opts.Threshold)
}

// hashRow computes an FNV-1a hash over a row's sorted column indices.
func hashRow(cols []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, j := range cols {
		v := uint64(j)
		for s := 0; s < 64; s += 8 {
			h ^= (v >> uint(s)) & 0xff
			h *= prime64
		}
	}
	return h
}

func rowsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// exactGroupsCSR mirrors the dense exact path with hash buckets over
// sorted column lists, split by true equality, through the same flat
// chain-array grouping core (exactGroupsFlat) — no per-bucket heap
// objects, which is what kept the org-scale analysis allocation-heavy.
func exactGroupsCSR(chk *ctxcheck.Checker, prog *progressTicker, c *matrix.CSR) (*Result, error) {
	return exactGroupsFlat(chk, prog, c.Rows(),
		func(i int) uint64 { return hashRow(c.RowCols(i)) },
		func(i, j int) bool { return rowsEqual(c.RowCols(i), c.RowCols(j)) })
}

// similarGroupsCSR is the inverted-index co-occurrence pass over CSR
// rows.
func similarGroupsCSR(chk *ctxcheck.Checker, prog *progressTicker, c *matrix.CSR, k int) (*Result, error) {
	n := c.Rows()
	norms := make([]int, n)
	for i := 0; i < n; i++ {
		norms[i] = c.RowSum(i)
	}

	// Inverted index: column -> rows having it, in ascending row order,
	// built with the exact-size two-pass layout shared with the
	// parallel path.
	colIndex := buildColIndex(n, c.Cols(), 1, func(i int, emit func(col int)) {
		for _, j := range c.RowCols(i) {
			emit(j)
		}
	})

	uf := newUnionFind(n)
	pairs := 0
	scratch := getScratch(n)
	counts, touched := scratch.counts, scratch.touched
	for i := 0; i < n; i++ {
		// One tick per nonzero: each expands a full posting list. On
		// cancellation the scratch is dropped, not pooled: counts
		// still holds nonzero residue for the abandoned row.
		for _, u := range c.RowCols(i) {
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			prog.tick(i)
			for _, j := range colIndex[u] {
				if int(j) <= i {
					continue
				}
				if counts[j] == 0 {
					touched = append(touched, j)
				}
				counts[j]++
			}
		}
		ni := norms[i]
		for _, j := range touched {
			g := int(counts[j])
			counts[j] = 0
			pairs++
			if ni+norms[j]-2*g <= k {
				uf.union(i, int(j))
			}
		}
		touched = touched[:0]
	}
	scratch.touched = touched
	putScratch(scratch)

	// Norm-bucket pass for pairs sharing no columns (see similarGroups).
	bucketByNorm := make([][]int, k+1)
	for i, nrm := range norms {
		if nrm <= k {
			bucketByNorm[nrm] = append(bucketByNorm[nrm], i)
		}
	}
	for na := 0; na <= k; na++ {
		for nb := na; na+nb <= k; nb++ {
			joinBuckets(uf, bucketByNorm[na], bucketByNorm[nb], na == nb)
		}
	}

	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		byRoot[uf.find(i)] = append(byRoot[uf.find(i)], i)
	}
	var groups [][]int
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	sortGroups(groups)
	prog.finish()
	return &Result{Groups: groups, PairsExamined: pairs}, nil
}
