package rolediet

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/cluster/dbscan"
)

// paperRUAM reconstructs the worked example of §III-C. The co-occurrence
// matrix printed in the paper pins the assignments down to:
//
//	R01 = {U03}, R02 = {U01, U02}, R03 = {}, R04 = {U01, U02}, R05 = {U04}
//
// giving norms (1, 2, 0, 2, 1) and g(R02, R04) = 2 with all other
// off-diagonal co-occurrences zero.
func paperRUAM() Rows {
	return Rows{
		bitvec.FromIndices(4, []int{2}),
		bitvec.FromIndices(4, []int{0, 1}),
		bitvec.FromIndices(4, nil),
		bitvec.FromIndices(4, []int{0, 1}),
		bitvec.FromIndices(4, []int{3}),
	}
}

func TestPaperWorkedExample(t *testing.T) {
	rows := paperRUAM()
	c := CooccurrenceMatrix(rows)
	want := [][]int{
		{1, 0, 0, 0, 0},
		{0, 2, 0, 2, 0},
		{0, 0, 0, 0, 0},
		{0, 2, 0, 2, 0},
		{0, 0, 0, 0, 1},
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("CooccurrenceMatrix =\n%v\nwant\n%v", c, want)
	}

	// I(R02, R04) = 1; every other distinct pair is 0.
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			got, err := Indicator(c, i, j)
			if err != nil {
				t.Fatal(err)
			}
			wantInd := 0
			if (i == 1 && j == 3) || (i == 3 && j == 1) {
				wantInd = 1
			}
			if got != wantInd {
				t.Errorf("Indicator(%d,%d) = %d, want %d", i, j, got, wantInd)
			}
		}
	}

	res, err := Groups(rows, Options{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Groups, [][]int{{1, 3}}) {
		t.Fatalf("Groups = %v, want [[1 3]]", res.Groups)
	}
	if got := GroupsFromIndicator(c); !reflect.DeepEqual(got, [][]int{{1, 3}}) {
		t.Fatalf("GroupsFromIndicator = %v, want [[1 3]]", got)
	}
}

func TestIndicatorErrors(t *testing.T) {
	c := CooccurrenceMatrix(paperRUAM())
	if _, err := Indicator(c, -1, 0); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := Indicator(c, 0, 5); err == nil {
		t.Error("out-of-range index accepted")
	}
	if got, err := Indicator(c, 2, 2); err != nil || got != 0 {
		t.Errorf("Indicator(i,i) = (%d, %v), want (0, nil)", got, err)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Threshold: -1}).Validate(); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Groups(paperRUAM(), Options{Threshold: -2}); err == nil {
		t.Error("Groups accepted negative threshold")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Groups(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("Groups on empty input = %v", res.Groups)
	}
}

func TestRowWidthMismatch(t *testing.T) {
	rows := Rows{bitvec.New(3), bitvec.New(4)}
	if _, err := Groups(rows, Options{}); err == nil {
		t.Fatal("mismatched row widths accepted")
	}
}

func TestEmptyRowsGroupTogetherExact(t *testing.T) {
	rows := Rows{
		bitvec.New(8),
		bitvec.FromIndices(8, []int{1}),
		bitvec.New(8),
	}
	for _, disable := range []bool{false, true} {
		res, err := Groups(rows, Options{Threshold: 0, DisableExactHashFastPath: disable})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Groups, [][]int{{0, 2}}) {
			t.Fatalf("disable=%v: Groups = %v, want [[0 2]]", disable, res.Groups)
		}
	}
}

func TestSimilarThresholdOne(t *testing.T) {
	rows := Rows{
		bitvec.FromIndices(8, []int{0, 1, 2}),
		bitvec.FromIndices(8, []int{0, 1, 2, 3}), // 1 away from row 0
		bitvec.FromIndices(8, []int{5, 6}),       // far from everything
		bitvec.New(8),                            // empty: 1 away from nothing but other small rows
		bitvec.FromIndices(8, []int{7}),          // norm 1: within 1 of the empty row
	}
	res, err := Groups(rows, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {3, 4}}
	if !reflect.DeepEqual(res.Groups, want) {
		t.Fatalf("Groups = %v, want %v", res.Groups, want)
	}
}

func TestChainingSemantics(t *testing.T) {
	// 000, 001, 011 chain at k=1 exactly like the DBSCAN baseline.
	rows := Rows{
		bitvec.New(3),
		bitvec.FromIndices(3, []int{2}),
		bitvec.FromIndices(3, []int{1, 2}),
	}
	res, err := Groups(rows, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Groups, [][]int{{0, 1, 2}}) {
		t.Fatalf("Groups = %v, want one chained group", res.Groups)
	}
}

func TestGroupOf(t *testing.T) {
	res := &Result{Groups: [][]int{{0, 2}, {1, 4}}}
	got := res.GroupOf(5)
	want := []int{0, 1, 0, -1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupOf = %v, want %v", got, want)
	}
}

func randRows(r *rand.Rand, n, dim int, density float64) Rows {
	rows := make(Rows, n)
	for i := range rows {
		v := bitvec.New(dim)
		for j := 0; j < dim; j++ {
			if r.Float64() < density {
				v.Set(j)
			}
		}
		rows[i] = v
	}
	return rows
}

// plantDuplicates overwrites random rows with copies of earlier rows so
// exact groups are guaranteed to exist.
func plantDuplicates(r *rand.Rand, rows Rows, count int) {
	for c := 0; c < count && len(rows) >= 2; c++ {
		src := r.Intn(len(rows))
		dst := r.Intn(len(rows))
		if src != dst {
			rows[dst] = rows[src].Clone()
		}
	}
}

func bruteExactGroups(rows Rows) [][]int {
	byKey := map[string][]int{}
	for i, r := range rows {
		byKey[r.String()] = append(byKey[r.String()], i)
	}
	var out [][]int
	for _, g := range byKey {
		if len(g) >= 2 {
			out = append(out, g)
		}
	}
	for _, g := range out {
		sort.Ints(g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func groupsEqual(a, b [][]int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestPropertyExactMatchesBruteForce(t *testing.T) {
	// DESIGN.md §7: RoleDiet exact groups == brute-force vector-equality
	// groups, through both the hash fast path and the general path.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(50), 1+r.Intn(20), 0.3)
		plantDuplicates(r, rows, r.Intn(10))
		want := bruteExactGroups(rows)
		for _, disable := range []bool{false, true} {
			res, err := Groups(rows, Options{Threshold: 0, DisableExactHashFastPath: disable})
			if err != nil {
				return false
			}
			if !groupsEqual(res.Groups, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// dbscanGroups runs the exact baseline and normalises its output.
func dbscanGroups(rows Rows, eps float64) [][]int {
	res, err := dbscan.Run(rows, dbscan.Config{Eps: eps, MinPts: 2})
	if err != nil {
		panic(err)
	}
	gs := res.Groups()
	for _, g := range gs {
		sort.Ints(g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i][0] < gs[j][0] })
	return gs
}

func TestPropertySimilarMatchesDBSCAN(t *testing.T) {
	// With minPts=2 every point that has a neighbour is a core point, so
	// DBSCAN's clusters are exactly the connected components of the
	// "Hamming <= k" graph — which is what RoleDiet computes. The two
	// independent implementations must therefore agree perfectly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := r.Intn(3)
		rows := randRows(r, 2+r.Intn(40), 1+r.Intn(12), 0.3)
		plantDuplicates(r, rows, r.Intn(6))
		res, err := Groups(rows, Options{Threshold: k})
		if err != nil {
			return false
		}
		return groupsEqual(res.Groups, dbscanGroups(rows, float64(k)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAllReportedPairsWithinThreshold(t *testing.T) {
	// Soundness: within a group, every member is within k of at least
	// one other member (chain step), and no ungrouped role is within k
	// of any grouped or ungrouped role (completeness).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := r.Intn(3)
		rows := randRows(r, 2+r.Intn(30), 1+r.Intn(10), 0.35)
		res, err := Groups(rows, Options{Threshold: k})
		if err != nil {
			return false
		}
		inGroup := res.GroupOf(len(rows))
		// Chain step soundness.
		for _, g := range res.Groups {
			for _, i := range g {
				ok := false
				for _, j := range g {
					if i != j && rows[i].Hamming(rows[j]) <= k {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		// Completeness: any qualifying pair must be co-grouped.
		for i := range rows {
			for j := i + 1; j < len(rows); j++ {
				if rows[i].Hamming(rows[j]) <= k {
					if inGroup[i] == -1 || inGroup[i] != inGroup[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPairsExaminedBounded(t *testing.T) {
	// Disjoint rows share no users, so the inverted index must examine
	// zero pairs.
	rows := Rows{
		bitvec.FromIndices(8, []int{0, 1}),
		bitvec.FromIndices(8, []int{2, 3}),
		bitvec.FromIndices(8, []int{4, 5}),
	}
	res, err := Groups(rows, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsExamined != 0 {
		t.Fatalf("PairsExamined = %d, want 0 for disjoint rows", res.PairsExamined)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("Groups = %v, want none", res.Groups)
	}
}

func TestLargeIdenticalBlock(t *testing.T) {
	// 100 identical rows must come back as one group of 100.
	base := bitvec.FromIndices(64, []int{1, 5, 9})
	rows := make(Rows, 100)
	for i := range rows {
		rows[i] = base.Clone()
	}
	res, err := Groups(rows, Options{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || len(res.Groups[0]) != 100 {
		t.Fatalf("got %d groups, first size %d", len(res.Groups), len(res.Groups[0]))
	}
}
