package rolediet

import (
	"context"
	"math/bits"
	"sync"

	"repro/internal/bitmat"
	"repro/internal/ctxcheck"
	"repro/internal/parallel"
)

// buildColIndex builds the inverted index (column -> ascending role
// ids) with a two-pass exact-size layout: a counting pass sizes every
// posting list, then one flat []int32 backs all of them and a fill
// pass writes each posting exactly once. Compared to the old
// append-grown [][]int32 this trades a second walk over the matrix for
// the elimination of per-column reallocation/copy churn — two
// allocations total instead of O(width·log(postings)) — which is where
// most of the grouping hot path's allocs/op used to go.
//
// With workers > 1 both passes fan out over contiguous row chunks.
// The layout stays fully deterministic: worker w owns rows
// [chunk.Lo, chunk.Hi), every row chunk is filled at per-worker
// per-column cursors that start where the previous worker's rows end,
// so each posting list comes out in ascending row order exactly as the
// serial build produces it.
//
// rowCols must invoke emit once per set column of row i, in any order
// (ascending for CSR/bitvec rows, but the index does not rely on it
// within a row since a row appears once per column it owns).
func buildColIndex(n, width, workers int, rowCols func(i int, emit func(col int))) [][]int32 {
	workers = parallel.Workers(workers, n)
	chunks := parallel.SplitRange(n, workers)
	// cursors doubles as the per-worker counting array in pass 1 and
	// the per-worker fill cursor in pass 2.
	cursors := make([]int32, len(chunks)*width)

	// Pass 1: count column degrees per worker chunk. The background
	// context keeps the pass uncancellable — it is a small, bounded
	// fraction of a grouping run, and callers poll their own checker
	// around it.
	_ = parallel.ForEachChunk(context.Background(), chunks, 0, func(w int, c parallel.Chunk, _ *ctxcheck.Checker) error {
		cnt := cursors[w*width : (w+1)*width]
		// emit is hoisted out of the row loop so the closure is
		// allocated once per chunk, not once per row.
		emit := func(col int) { cnt[col]++ }
		for i := c.Lo; i < c.Hi; i++ {
			rowCols(i, emit)
		}
		return nil
	})

	// Prefix pass: convert counts to absolute fill cursors and carve
	// the per-column posting lists out of one flat backing array.
	index := make([][]int32, width)
	flatLen := 0
	for j := 0; j < width; j++ {
		for w := 0; w < len(chunks); w++ {
			flatLen += int(cursors[w*width+j])
		}
	}
	flat := make([]int32, flatLen)
	off := 0
	for j := 0; j < width; j++ {
		colTotal := 0
		for w := 0; w < len(chunks); w++ {
			cnt := int(cursors[w*width+j])
			cursors[w*width+j] = int32(off + colTotal)
			colTotal += cnt
		}
		index[j] = flat[off : off+colTotal : off+colTotal]
		off += colTotal
	}

	// Pass 2: fill. Workers write disjoint flat ranges, so no locks.
	_ = parallel.ForEachChunk(context.Background(), chunks, 0, func(w int, c parallel.Chunk, _ *ctxcheck.Checker) error {
		cur := cursors[w*width : (w+1)*width]
		row := 0
		emit := func(col int) {
			flat[cur[col]] = int32(row)
			cur[col]++
		}
		for i := c.Lo; i < c.Hi; i++ {
			row = i
			rowCols(i, emit)
		}
		return nil
	})
	return index
}

// matRowCols adapts arena rows to buildColIndex's accessor. It walks
// the packed words of the contiguous arena directly so the index build
// streams memory linearly and no per-row wrapper closure is allocated:
// emit is forwarded as-is.
func matRowCols(m *bitmat.Matrix) func(i int, emit func(col int)) {
	return func(i int, emit func(col int)) {
		for wi, w := range m.RowWords(i) {
			base := wi * 64
			for w != 0 {
				emit(base + bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
	}
}

// dietScratch is the per-run (or per-worker) co-occurrence scratch:
// counts[j] accumulates g(i, j) for the current role i, touched lists
// the j's with nonzero counts so they can be reset in O(|touched|).
type dietScratch struct {
	counts  []int32
	touched []int32
}

// scratchPool recycles dietScratch values across grouping runs and
// across the parallel pass's workers. The pool invariant: every
// pooled counts slice is all-zero over its full capacity, so getScratch
// never has to re-zero — the grouping loop restores zeros row by row,
// and error paths simply drop their scratch instead of returning it.
var scratchPool = sync.Pool{New: func() any { return new(dietScratch) }}

// getScratch returns a scratch whose counts has length n (all zero).
func getScratch(n int) *dietScratch {
	s := scratchPool.Get().(*dietScratch)
	if cap(s.counts) < n {
		s.counts = make([]int32, n)
	} else {
		s.counts = s.counts[:n]
	}
	if s.touched == nil {
		s.touched = make([]int32, 0, 64)
	}
	s.touched = s.touched[:0]
	return s
}

// putScratch returns s to the pool. Only call it when counts is back
// to all-zero (the row loop's invariant after a successful run); on
// cancellation or error, drop the scratch on the floor instead.
func putScratch(s *dietScratch) {
	scratchPool.Put(s)
}
