package rolediet

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func TestPairsPaperExample(t *testing.T) {
	pairs, err := Pairs(paperRUAM(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{A: 1, B: 3, Distance: 0}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("Pairs = %v, want %v", pairs, want)
	}
}

func TestPairsValidation(t *testing.T) {
	if _, err := Pairs(paperRUAM(), -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
	rows := Rows{bitvec.New(3), bitvec.New(4)}
	if _, err := Pairs(rows, 1); err == nil {
		t.Fatal("mismatched widths accepted")
	}
	pairs, err := Pairs(nil, 1)
	if err != nil || pairs != nil {
		t.Fatalf("empty input = (%v, %v)", pairs, err)
	}
}

func TestPairsDistancesAndOrder(t *testing.T) {
	rows := Rows{
		bitvec.FromIndices(8, []int{0, 1}),
		bitvec.FromIndices(8, []int{0, 1, 2}), // d=1 from row 0
		bitvec.FromIndices(8, []int{0, 1}),    // d=0 from row 0, d=1 from row 1
		bitvec.New(8),                         // empty
		bitvec.FromIndices(8, []int{7}),       // d=1 from empty
	}
	pairs, err := Pairs(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{
		{A: 0, B: 2, Distance: 0},
		{A: 0, B: 1, Distance: 1},
		{A: 1, B: 2, Distance: 1},
		{A: 3, B: 4, Distance: 1},
	}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("Pairs = %v, want %v", pairs, want)
	}
}

func TestPropertyPairsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(40), 1+r.Intn(14), 0.3)
		plantDuplicates(r, rows, r.Intn(6))
		k := r.Intn(4)
		got, err := Pairs(rows, k)
		if err != nil {
			return false
		}
		// Brute-force oracle.
		var want []Pair
		for i := range rows {
			for j := i + 1; j < len(rows); j++ {
				if d := rows[i].Hamming(rows[j]); d <= k {
					want = append(want, Pair{A: i, B: j, Distance: d})
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		seen := make(map[Pair]bool, len(got))
		for _, p := range got {
			seen[p] = true
		}
		for _, p := range want {
			if !seen[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPairsConsistentWithGroups(t *testing.T) {
	// The union-find over Pairs must equal Groups at the same threshold.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(30), 1+r.Intn(10), 0.3)
		k := r.Intn(3)
		pairs, err := Pairs(rows, k)
		if err != nil {
			return false
		}
		uf := newUnionFind(len(rows))
		for _, p := range pairs {
			uf.union(p.A, p.B)
		}
		byRoot := map[int][]int{}
		for i := range rows {
			byRoot[uf.find(i)] = append(byRoot[uf.find(i)], i)
		}
		var derived [][]int
		for _, g := range byRoot {
			if len(g) >= 2 {
				derived = append(derived, g)
			}
		}
		sortGroups(derived)
		res, err := Groups(rows, Options{Threshold: k})
		if err != nil {
			return false
		}
		return groupsEqual(derived, res.Groups)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
