// Package rolediet implements the paper's custom algorithm (§III-C,
// "Our Algorithm") for finding groups of roles that share the same or
// similar sets of users/permissions.
//
// For roles Rⁱ, Rʲ with norms |Rⁱ| (assigned-user counts) and
// co-occurrence count g(i,j) (users assigned to both), the paper's
// indicator for an *exact* group is
//
//	I(i,j) = 1  iff  |Rⁱ| = g(i,j) = |Rʲ|,  i ≠ j
//
// which holds exactly when the two RUAM rows are identical. The *similar*
// case (same users ± a manually set threshold k) generalises through the
// identity Hamming(i,j) = |Rⁱ| + |Rʲ| − 2·g(i,j): two roles are similar
// iff that quantity is ≤ k.
//
// Rather than materialising the full r×r co-occurrence matrix C the
// implementation builds an inverted index (user → roles) and only visits
// pairs that share at least one user — the sparsity of real RBAC data is
// what delivers the paper's speedup over DBSCAN and HNSW. Pairs sharing
// no users are handled analytically: their Hamming distance is
// |Rⁱ|+|Rʲ|, so only roles with norms summing to ≤ k can pair, and those
// are unioned by norm bucket in linear time. Exact groups additionally
// get a hash-bucket fast path. The result is deterministic and complete:
// every qualifying pair is found, matching the paper's claim that the
// algorithm "consistently identifies all clusters without fail".
package rolediet

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
)

// Options configures a grouping run.
type Options struct {
	// Threshold is the maximum number of differing users/permissions for
	// two roles to be considered similar. 0 means exact (identical rows),
	// matching inefficiency class 4; k ≥ 1 matches class 5.
	Threshold int
	// DisableExactHashFastPath forces the Threshold=0 case through the
	// general co-occurrence path. Used by the ablation benchmarks only.
	DisableExactHashFastPath bool
	// Progress, when non-nil, receives (rowsDone, totalRows) from inside
	// the grouping loops on the same stride the context checker polls
	// cancellation, plus once at completion. rowsDone is monotonically
	// non-decreasing. The callback runs on the grouping goroutine and
	// must be cheap.
	Progress func(done, total int) `json:"-"`
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Threshold < 0 {
		return fmt.Errorf("rolediet: negative threshold %d", o.Threshold)
	}
	return nil
}

// Result holds the discovered role groups.
type Result struct {
	// Groups lists each group as ascending role indices; groups are
	// ordered by their smallest member. Every group has >= 2 members.
	Groups [][]int
	// PairsExamined counts role pairs whose co-occurrence was actually
	// inspected — the work metric the inverted index minimises.
	PairsExamined int
}

// GroupOf returns a role-index → group-id map (-1 for ungrouped roles).
func (r *Result) GroupOf(numRoles int) []int {
	out := make([]int, numRoles)
	for i := range out {
		out[i] = -1
	}
	for gid, g := range r.Groups {
		for _, i := range g {
			out[i] = gid
		}
	}
	return out
}

// Rows is the input view: one bit vector per role (a RUAM or RPAM row).
type Rows []*bitvec.Vector

// Groups finds all groups of roles whose rows are identical
// (opts.Threshold == 0) or within Hamming distance Threshold of a chain
// of group members (Threshold >= 1; connectivity semantics match the
// DBSCAN baseline so the three methods are comparable).
func Groups(rows Rows, opts Options) (*Result, error) {
	return GroupsContext(context.Background(), rows, opts)
}

// GroupsContext is Groups with cooperative cancellation: the hot loops
// poll the context every few thousand rows / co-occurrence expansions
// and abort with ctx.Err(), discarding partial groups.
//
// The rows are packed into a bitmat arena first; callers that already
// hold an arena (internal/core builds one per dataset side and shares
// it across backends) should use GroupsMatContext to skip the pack.
func GroupsContext(ctx context.Context, rows Rows, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return &Result{}, nil
	}
	width := rows[0].Len()
	for i, r := range rows {
		if r.Len() != width {
			return nil, fmt.Errorf("rolediet: row %d has length %d, want %d", i, r.Len(), width)
		}
	}
	m, err := bitmat.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return GroupsMatContext(ctx, m, opts)
}

// GroupsMat runs the grouping directly over a prebuilt bit-matrix
// arena: norms come precomputed, row hashing/equality are word
// compares over contiguous memory, and the inverted index is built by
// walking the arena linearly.
func GroupsMat(m *bitmat.Matrix, opts Options) (*Result, error) {
	return GroupsMatContext(context.Background(), m, opts)
}

// GroupsMatContext is GroupsMat with cooperative cancellation.
func GroupsMatContext(ctx context.Context, m *bitmat.Matrix, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if m.Rows() == 0 {
		return &Result{}, nil
	}
	chk := ctxcheck.New(ctx, groupStride)
	if err := chk.Err(); err != nil {
		return nil, err
	}
	prog := newProgressTicker(opts.Progress, m.Rows())
	if opts.Threshold == 0 && !opts.DisableExactHashFastPath {
		return exactGroupsFlat(chk, prog, m.Rows(), m.RowHash, m.RowEqual)
	}
	return similarGroups(chk, prog, m, opts.Threshold)
}

// groupStride is the shared loop stride: the context is polled and the
// progress hook invoked once per this many ticks of the hot loops.
const groupStride = 1024

// progressTicker throttles Options.Progress to the group stride so the
// hook costs one integer increment per tick, mirroring ctxcheck. A nil
// ticker (no hook installed) makes every method a no-op.
type progressTicker struct {
	fn    func(done, total int)
	total int
	n     int
}

func newProgressTicker(fn func(done, total int), total int) *progressTicker {
	if fn == nil {
		return nil
	}
	return &progressTicker{fn: fn, total: total}
}

// tick reports one unit of loop work with the outer loop at row `done`;
// every groupStride-th call forwards (done, total) to the hook.
func (p *progressTicker) tick(done int) {
	if p == nil {
		return
	}
	p.n++
	if p.n < groupStride {
		return
	}
	p.n = 0
	p.fn(done, p.total)
}

// finish reports completion: (total, total).
func (p *progressTicker) finish() {
	if p == nil {
		return
	}
	p.fn(p.total, p.total)
}

// exactGroupsFlat buckets rows by hash and splits buckets by true
// equality (so hash collisions can never merge distinct rows), with the
// per-bucket state held in flat int32 chain arrays instead of per-bucket
// heap objects: one map entry per distinct hash plus four fixed arrays,
// versus the old map-of-struct layout's per-row slice churn. hash and
// equal abstract the row storage — the arena's word compares for the
// dense path, sorted column lists for CSR.
func exactGroupsFlat(chk *ctxcheck.Checker, prog *progressTicker, n int, hash func(i int) uint64, equal func(i, j int) bool) (*Result, error) {
	const none = int32(-1)
	// heads maps a hash to the first representative row seen under it;
	// repNext chains further representatives (distinct rows, same hash)
	// in insertion order, so PairsExamined counts exactly the
	// comparisons the old bucket walk made.
	heads := make(map[uint64]int32, n)
	repNext := make([]int32, n)
	rep := make([]int32, n)
	pairs := 0
	for i := 0; i < n; i++ {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		prog.tick(i)
		repNext[i] = none
		h := hash(i)
		r, ok := heads[h]
		if !ok {
			heads[h] = int32(i)
			rep[i] = int32(i)
			continue
		}
		last := r
		placed := false
		for ; r != none; r = repNext[r] {
			pairs++
			if equal(int(r), i) {
				rep[i] = r
				placed = true
				break
			}
			last = r
		}
		if !placed {
			repNext[last] = int32(i)
			rep[i] = int32(i)
		}
	}
	// Materialise groups of size >= 2. Walking rows in ascending order
	// yields ascending members per group and groups ordered by their
	// smallest member (the representative is always first occurrence).
	cnt := make([]int32, n)
	for i := 0; i < n; i++ {
		cnt[rep[i]]++
	}
	gidx := make([]int32, n)
	for i := range gidx {
		gidx[i] = none
	}
	var groups [][]int
	for i := 0; i < n; i++ {
		r := rep[i]
		if cnt[r] < 2 {
			continue
		}
		if gidx[r] == none {
			gidx[r] = int32(len(groups))
			groups = append(groups, make([]int, 0, cnt[r]))
		}
		groups[gidx[r]] = append(groups[gidx[r]], i)
	}
	sortGroups(groups)
	prog.finish()
	return &Result{Groups: groups, PairsExamined: pairs}, nil
}

// similarGroups implements the general thresholded case with union-find
// connectivity over the "Hamming <= k" relation, reading rows and norms
// off the shared arena.
func similarGroups(chk *ctxcheck.Checker, prog *progressTicker, m *bitmat.Matrix, k int) (*Result, error) {
	n := m.Rows()
	norms := make([]int, n)
	for i, v := range m.Norms() {
		norms[i] = int(v)
	}

	// Inverted index: column (user) -> roles having that column set,
	// built with the exact-size two-pass layout shared with the
	// parallel path.
	colIndex := buildColIndex(n, m.Cols(), 1, matRowCols(m))

	uf := newUnionFind(n)
	pairs := 0

	// Pooled scratch: co-occurrence counts for the current role i
	// against every role j > i that shares at least one user with it.
	scratch := getScratch(n)
	counts, touched := scratch.counts, scratch.touched
	// One tick per set bit: each expands a full posting list, so the
	// per-tick work is substantial and cancellation stays prompt. After
	// a failed tick the expand callback goes inert, so the remainder of
	// the row is a cheap no-op walk. expand is hoisted out of the row
	// loop (row/tickErr flow through captured variables) so the closure
	// is allocated once per run, not once per row.
	var tickErr error
	row := 0
	expand := func(u int) {
		if tickErr != nil {
			return
		}
		if tickErr = chk.Tick(); tickErr != nil {
			return
		}
		prog.tick(row)
		for _, j := range colIndex[u] {
			if int(j) <= row {
				continue
			}
			if counts[j] == 0 {
				touched = append(touched, j)
			}
			counts[j]++
		}
	}
	rowCols := matRowCols(m)
	for i := 0; i < n; i++ {
		row = i
		rowCols(i, expand)
		if tickErr != nil {
			// Drop the scratch rather than pooling it: counts still
			// holds nonzero residue for the abandoned row.
			return nil, tickErr
		}
		ni := norms[i]
		for _, j := range touched {
			g := int(counts[j])
			counts[j] = 0
			pairs++
			// Hamming(i,j) = |Ri| + |Rj| - 2 g(i,j).
			if ni+norms[j]-2*g <= k {
				uf.union(i, int(j))
			}
		}
		touched = touched[:0]
	}
	scratch.touched = touched
	putScratch(scratch)

	// Pairs sharing no users have g = 0 and Hamming = |Ri| + |Rj|; only
	// roles with small norms can qualify. Union the norm buckets whose
	// sums stay within k — this also re-unions sharing pairs harmlessly,
	// since sharing only shrinks the distance further. At k = 0 this
	// reduces to grouping the all-zero rows, which are identical to each
	// other yet invisible to the inverted index.
	bucketByNorm := make([][]int, k+1)
	for i, nrm := range norms {
		if nrm <= k {
			bucketByNorm[nrm] = append(bucketByNorm[nrm], i)
		}
	}
	for na := 0; na <= k; na++ {
		for nb := na; na+nb <= k; nb++ {
			joinBuckets(uf, bucketByNorm[na], bucketByNorm[nb], na == nb)
		}
	}

	// Materialise components of size >= 2.
	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		root := uf.find(i)
		byRoot[root] = append(byRoot[root], i)
	}
	var groups [][]int
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	sortGroups(groups)
	prog.finish()
	return &Result{Groups: groups, PairsExamined: pairs}, nil
}

// joinBuckets unions every element of a with every element of b. Since
// union is transitive it suffices to chain each bucket internally and
// then bridge the two representatives.
func joinBuckets(uf *unionFind, a, b []int, same bool) {
	if len(a) == 0 || len(b) == 0 {
		return
	}
	if same && len(a) < 2 {
		return
	}
	for i := 1; i < len(a); i++ {
		uf.union(a[0], a[i])
	}
	for i := 1; i < len(b); i++ {
		uf.union(b[0], b[i])
	}
	uf.union(a[0], b[0])
}

// sortGroups sorts members ascending and groups by smallest member.
func sortGroups(groups [][]int) {
	for _, g := range groups {
		sort.Ints(g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
}

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{
		parent: make([]int, n),
		size:   make([]int, n),
	}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
