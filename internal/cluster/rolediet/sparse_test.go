package rolediet

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// toCSR converts dense test rows to the sparse form.
func toCSR(rows Rows) *matrix.CSR {
	m, err := matrix.FromRows(rows)
	if err != nil {
		panic(err)
	}
	return matrix.CSRFromDense(m)
}

func TestGroupsCSRPaperExample(t *testing.T) {
	res, err := GroupsCSR(toCSR(paperRUAM()), Options{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Groups, [][]int{{1, 3}}) {
		t.Fatalf("Groups = %v, want [[1 3]]", res.Groups)
	}
}

func TestGroupsCSRValidation(t *testing.T) {
	if _, err := GroupsCSR(toCSR(paperRUAM()), Options{Threshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestGroupsCSREmpty(t *testing.T) {
	res, err := GroupsCSR(matrix.NewCSR(0, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("Groups = %v", res.Groups)
	}
}

func TestGroupsCSREmptyRowsGroup(t *testing.T) {
	// Two all-zero rows are identical and must group, exactly like the
	// dense implementation.
	c := matrix.NewCSR(3, 4)
	c.ColIdx = []int{1}
	c.RowPtr = []int{0, 0, 1, 1} // row 1 has column 1; rows 0 and 2 empty
	res, err := GroupsCSR(c, Options{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Groups, [][]int{{0, 2}}) {
		t.Fatalf("Groups = %v, want [[0 2]]", res.Groups)
	}
}

func TestPropertyCSRMatchesDenseGroups(t *testing.T) {
	// The sparse and dense implementations must agree exactly on every
	// input and threshold, through both the exact and general paths.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(40), 1+r.Intn(16), 0.3)
		plantDuplicates(r, rows, r.Intn(8))
		csr := toCSR(rows)
		for _, k := range []int{0, 1, 2} {
			for _, disable := range []bool{false, true} {
				opts := Options{Threshold: k, DisableExactHashFastPath: disable}
				dense, err := Groups(rows, opts)
				if err != nil {
					return false
				}
				sparse, err := GroupsCSR(csr, opts)
				if err != nil {
					return false
				}
				if !groupsEqual(dense.Groups, sparse.Groups) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsCSRSimilarThreshold(t *testing.T) {
	rows := Rows{}
	rows = append(rows, paperRUAM()...)
	res, err := GroupsCSR(toCSR(rows), Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Groups(rows, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(res.Groups, dense.Groups) {
		t.Fatalf("sparse %v != dense %v", res.Groups, dense.Groups)
	}
}
