package rolediet_test

import (
	"context"
	"testing"

	"repro/internal/testkit"
)

// TestAgainstOracle is the package-local slice of the differential
// harness: the three rolediet variants (dense, CSR, parallel) must
// reproduce the brute-force O(r²) oracle partition exactly on a sample
// of the seeded corpora. The full sweep lives in internal/testkit; this
// guard makes a rolediet-only change fail in this package's own tests.
func TestAgainstOracle(t *testing.T) {
	ctx := context.Background()
	var mine []testkit.Backend
	for _, b := range testkit.Backends() {
		switch b.Name {
		case "rolediet", "rolediet-csr", "rolediet-parallel":
			mine = append(mine, b)
		}
	}
	if len(mine) != 3 {
		t.Fatalf("expected 3 rolediet backends in the registry, got %d", len(mine))
	}
	corpora := testkit.Corpora(false)
	for _, c := range corpora[:8] {
		failures, err := testkit.RunCorpus(ctx, c, mine)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range failures {
			t.Error(f.Error())
		}
	}
}
