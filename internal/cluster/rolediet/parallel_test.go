package rolediet

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGroupsParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(60), 1+r.Intn(20), 0.3)
		plantDuplicates(r, rows, r.Intn(10))
		k := r.Intn(3)
		workers := 1 + r.Intn(8)
		serial, err := Groups(rows, Options{Threshold: k})
		if err != nil {
			return false
		}
		par, err := GroupsParallel(rows, Options{Threshold: k}, workers)
		if err != nil {
			return false
		}
		if !groupsEqual(serial.Groups, par.Groups) {
			return false
		}
		// The pair-examination count is partition-independent.
		return serial.PairsExamined == par.PairsExamined
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsParallelDefaults(t *testing.T) {
	rows := paperRUAM()
	res, err := GroupsParallel(rows, Options{Threshold: 0}, 0) // GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Groups, [][]int{{1, 3}}) {
		t.Fatalf("Groups = %v", res.Groups)
	}
}

func TestGroupsParallelValidation(t *testing.T) {
	if _, err := GroupsParallel(paperRUAM(), Options{Threshold: -1}, 2); err == nil {
		t.Fatal("negative threshold accepted")
	}
	rows := Rows{randRows(rand.New(rand.NewSource(1)), 1, 4, 0.5)[0],
		randRows(rand.New(rand.NewSource(2)), 1, 5, 0.5)[0]}
	if _, err := GroupsParallel(rows, Options{Threshold: 1}, 2); err == nil {
		t.Fatal("mismatched row widths accepted")
	}
}

func TestGroupsParallelEmpty(t *testing.T) {
	res, err := GroupsParallel(nil, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("Groups = %v", res.Groups)
	}
}

func TestGroupsParallelMoreWorkersThanRows(t *testing.T) {
	rows := paperRUAM()
	res, err := GroupsParallel(rows, Options{Threshold: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Groups(rows, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(res.Groups, serial.Groups) {
		t.Fatalf("parallel %v != serial %v", res.Groups, serial.Groups)
	}
}

func TestSplitRange(t *testing.T) {
	tests := []struct {
		n, parts int
		want     []chunk
	}{
		{10, 3, []chunk{{0, 4}, {4, 7}, {7, 10}}},
		{3, 5, []chunk{{0, 1}, {1, 2}, {2, 3}}},
		{4, 1, []chunk{{0, 4}}},
	}
	for _, tt := range tests {
		got := splitRange(tt.n, tt.parts)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("splitRange(%d,%d) = %v, want %v", tt.n, tt.parts, got, tt.want)
		}
	}
	// Chunks always cover [0, n) without gaps or overlap.
	for n := 1; n < 40; n++ {
		for parts := 1; parts < 10; parts++ {
			chunks := splitRange(n, parts)
			covered := 0
			prev := 0
			for _, c := range chunks {
				if c.lo != prev {
					t.Fatalf("gap at %d for n=%d parts=%d", c.lo, n, parts)
				}
				covered += c.hi - c.lo
				prev = c.hi
			}
			if covered != n || prev != n {
				t.Fatalf("splitRange(%d,%d) covers %d", n, parts, covered)
			}
		}
	}
}

func TestRowLenError(t *testing.T) {
	err := &rowLenError{index: 3, got: 4, want: 5}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
}
