package rolediet

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGroupsParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(60), 1+r.Intn(20), 0.3)
		plantDuplicates(r, rows, r.Intn(10))
		k := r.Intn(3)
		workers := 1 + r.Intn(8)
		serial, err := Groups(rows, Options{Threshold: k})
		if err != nil {
			return false
		}
		par, err := GroupsParallel(rows, Options{Threshold: k}, workers)
		if err != nil {
			return false
		}
		if !groupsEqual(serial.Groups, par.Groups) {
			return false
		}
		// The pair-examination count is partition-independent.
		return serial.PairsExamined == par.PairsExamined
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsParallelDefaults(t *testing.T) {
	rows := paperRUAM()
	res, err := GroupsParallel(rows, Options{Threshold: 0}, 0) // GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Groups, [][]int{{1, 3}}) {
		t.Fatalf("Groups = %v", res.Groups)
	}
}

func TestGroupsParallelValidation(t *testing.T) {
	if _, err := GroupsParallel(paperRUAM(), Options{Threshold: -1}, 2); err == nil {
		t.Fatal("negative threshold accepted")
	}
	rows := Rows{randRows(rand.New(rand.NewSource(1)), 1, 4, 0.5)[0],
		randRows(rand.New(rand.NewSource(2)), 1, 5, 0.5)[0]}
	if _, err := GroupsParallel(rows, Options{Threshold: 1}, 2); err == nil {
		t.Fatal("mismatched row widths accepted")
	}
}

func TestGroupsParallelEmpty(t *testing.T) {
	res, err := GroupsParallel(nil, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("Groups = %v", res.Groups)
	}
}

func TestGroupsParallelMoreWorkersThanRows(t *testing.T) {
	rows := paperRUAM()
	res, err := GroupsParallel(rows, Options{Threshold: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Groups(rows, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(res.Groups, serial.Groups) {
		t.Fatalf("parallel %v != serial %v", res.Groups, serial.Groups)
	}
}

// TestRowLenError asserts the parallel validation error carries the
// same diagnostic detail (row index, actual and expected width) as the
// serial path, character for character: a caller switching Workers on
// must not lose error fidelity.
func TestRowLenError(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rows := randRows(r, 5, 8, 0.5)
	rows[3] = randRows(r, 1, 6, 0.5)[0] // row 3: width 6, want 8
	_, serialErr := Groups(rows, Options{Threshold: 1})
	if serialErr == nil {
		t.Fatal("serial accepted ragged rows")
	}
	_, parErr := GroupsParallel(rows, Options{Threshold: 1}, 4)
	if parErr == nil {
		t.Fatal("parallel accepted ragged rows")
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error detail mismatch:\n  serial:   %q\n  parallel: %q", serialErr, parErr)
	}
	want := "rolediet: row 3 has length 6, want 8"
	if parErr.Error() != want {
		t.Fatalf("parallel error = %q, want %q", parErr, want)
	}
}

// TestGroupsCSRParallelMatchesSerial mirrors the dense metamorphic
// check for the CSR entry point.
func TestGroupsCSRParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(60), 1+r.Intn(20), 0.3)
		plantDuplicates(r, rows, r.Intn(10))
		c := toCSR(rows)
		k := r.Intn(3)
		workers := 1 + r.Intn(8)
		serial, err := GroupsCSR(c, Options{Threshold: k})
		if err != nil {
			return false
		}
		par, err := GroupsCSRParallel(c, Options{Threshold: k}, workers)
		if err != nil {
			return false
		}
		if !groupsEqual(serial.Groups, par.Groups) {
			return false
		}
		return serial.PairsExamined == par.PairsExamined
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupsParallelProgress checks the aggregated progress hook keeps
// the serial contract under the fan-out: monotonically non-decreasing
// done counts, a fixed total, and a final (total, total) report.
func TestGroupsParallelProgress(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	rows := randRows(r, 500, 40, 0.3)
	last := -1
	calls := 0
	opts := Options{Threshold: 1, Progress: func(done, total int) {
		calls++
		if total != len(rows) {
			t.Fatalf("total = %d, want %d", total, len(rows))
		}
		if done < last {
			t.Fatalf("progress went backwards: %d after %d", done, last)
		}
		if done > total {
			t.Fatalf("done %d > total %d", done, total)
		}
		last = done
	}}
	if _, err := GroupsParallel(rows, opts, 4); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress hook never invoked")
	}
	if last != len(rows) {
		t.Fatalf("final done = %d, want %d", last, len(rows))
	}
}
