package rolediet_test

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cluster/rolediet"
)

// Example reproduces the paper's §III-C worked example: the
// co-occurrence matrix C over the Figure 1 RUAM and the single exact
// group it implies.
func Example() {
	// R01={U03}, R02={U01,U02}, R03={}, R04={U01,U02}, R05={U04}.
	rows := rolediet.Rows{
		bitvec.FromIndices(4, []int{2}),
		bitvec.FromIndices(4, []int{0, 1}),
		bitvec.FromIndices(4, nil),
		bitvec.FromIndices(4, []int{0, 1}),
		bitvec.FromIndices(4, []int{3}),
	}
	c := rolediet.CooccurrenceMatrix(rows)
	for _, row := range c {
		fmt.Println(row)
	}
	res, err := rolediet.Groups(rows, rolediet.Options{Threshold: 0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("groups:", res.Groups)
	// Output:
	// [1 0 0 0 0]
	// [0 2 0 2 0]
	// [0 0 0 0 0]
	// [0 2 0 2 0]
	// [0 0 0 0 1]
	// groups: [[1 3]]
}

// ExampleGroups_threshold finds similar roles: identical up to one
// differing user.
func ExampleGroups_threshold() {
	rows := rolediet.Rows{
		bitvec.FromIndices(6, []int{0, 1, 2}),
		bitvec.FromIndices(6, []int{0, 1, 2, 3}),
		bitvec.FromIndices(6, []int{4, 5}),
	}
	res, err := rolediet.Groups(rows, rolediet.Options{Threshold: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Groups)
	// Output:
	// [[0 1]]
}
