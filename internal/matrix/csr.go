package matrix

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row view of a boolean matrix: for each row
// only the sorted column indices of set cells are stored. The paper notes
// (§III-B) that sparse representations can further reduce the r*(u+p)
// memory footprint at the cost of conversion time; the benchmark harness
// measures that trade-off.
type CSR struct {
	// RowPtr has len Rows+1; the set columns of row i are
	// ColIdx[RowPtr[i]:RowPtr[i+1]], sorted ascending.
	RowPtr []int
	ColIdx []int
	// NRows and NCols give the logical shape (trailing all-zero rows and
	// columns are representable).
	NRows, NCols int
}

// NewCSR builds an empty CSR with the given shape.
func NewCSR(rows, cols int) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative shape %dx%d", rows, cols))
	}
	return &CSR{
		RowPtr: make([]int, rows+1),
		NRows:  rows,
		NCols:  cols,
	}
}

// CSRFromDense converts a dense BitMatrix to CSR form.
func CSRFromDense(m *BitMatrix) *CSR {
	c := &CSR{
		RowPtr: make([]int, m.Rows()+1),
		ColIdx: make([]int, 0, m.Count()),
		NRows:  m.Rows(),
		NCols:  m.Cols(),
	}
	for i := 0; i < m.Rows(); i++ {
		c.ColIdx = append(c.ColIdx, m.Row(i).Indices()...)
		c.RowPtr[i+1] = len(c.ColIdx)
	}
	return c
}

// CSRFromTriplets builds a CSR from (row, col) coordinate pairs.
// Duplicate pairs are collapsed; out-of-range coordinates are an error.
func CSRFromTriplets(rows, cols int, coords [][2]int) (*CSR, error) {
	perRow := make([][]int, rows)
	for _, rc := range coords {
		i, j := rc[0], rc[1]
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return nil, fmt.Errorf("matrix: coordinate (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		perRow[i] = append(perRow[i], j)
	}
	c := NewCSR(rows, cols)
	for i, js := range perRow {
		sort.Ints(js)
		prev := -1
		for _, j := range js {
			if j == prev {
				continue
			}
			c.ColIdx = append(c.ColIdx, j)
			prev = j
		}
		c.RowPtr[i+1] = len(c.ColIdx)
	}
	return c, nil
}

// ToDense converts the CSR back to a dense BitMatrix.
func (c *CSR) ToDense() *BitMatrix {
	m := NewBitMatrix(c.NRows, c.NCols)
	for i := 0; i < c.NRows; i++ {
		for _, j := range c.RowCols(i) {
			m.Set(i, j)
		}
	}
	return m
}

// Rows returns the number of rows.
func (c *CSR) Rows() int { return c.NRows }

// Cols returns the number of columns.
func (c *CSR) Cols() int { return c.NCols }

// NNZ returns the number of stored (set) cells.
func (c *CSR) NNZ() int { return len(c.ColIdx) }

// RowCols returns the sorted set-column indices of row i. The slice
// aliases internal storage and must be treated as read-only.
func (c *CSR) RowCols(i int) []int {
	if i < 0 || i >= c.NRows {
		panic(fmt.Sprintf("matrix: row %d out of range [0,%d)", i, c.NRows))
	}
	return c.ColIdx[c.RowPtr[i]:c.RowPtr[i+1]]
}

// RowSum returns the number of set cells in row i.
func (c *CSR) RowSum(i int) int { return len(c.RowCols(i)) }

// Get reports whether cell (i, j) is set, by binary search within the row.
func (c *CSR) Get(i, j int) bool {
	row := c.RowCols(i)
	k := sort.SearchInts(row, j)
	return k < len(row) && row[k] == j
}

// ColSums returns per-column counts of set cells.
func (c *CSR) ColSums() []int {
	out := make([]int, c.NCols)
	for _, j := range c.ColIdx {
		out[j]++
	}
	return out
}

// IntersectionCount returns the number of columns set in both row a and
// row b, via a linear merge of the two sorted index lists. This is the
// sparse counterpart of bitvec.IntersectionCount and the building block
// of the sparse co-occurrence computation.
func (c *CSR) IntersectionCount(a, b int) int {
	ra, rb := c.RowCols(a), c.RowCols(b)
	n, i, j := 0, 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i] == rb[j]:
			n++
			i++
			j++
		case ra[i] < rb[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Hamming returns the Hamming distance between rows a and b.
func (c *CSR) Hamming(a, b int) int {
	return c.RowSum(a) + c.RowSum(b) - 2*c.IntersectionCount(a, b)
}

// MemoryBytes estimates the storage footprint of the CSR structure in
// bytes (8 bytes per stored int). Exposed so the benchmark harness can
// report dense-vs-sparse memory, mirroring the paper's §III-B discussion.
func (c *CSR) MemoryBytes() int {
	return 8 * (len(c.RowPtr) + len(c.ColIdx))
}

// MemoryBytesDense estimates a dense bit-packed matrix footprint for the
// same shape.
func MemoryBytesDense(rows, cols int) int {
	wordsPerRow := (cols + 63) / 64
	return 8 * rows * wordsPerRow
}
