// Package matrix implements the boolean assignment matrices at the heart
// of the paper's framework: the Role-User Assignment Matrix (RUAM) and
// Role-Permission Assignment Matrix (RPAM).
//
// Instead of the full (r+u+p)² adjacency matrix of the tripartite graph,
// the paper stores the two r×u and r×p sub-matrices (Figure 1, Steps 2-3),
// needing r*(u+p) cells. This package represents them as bit-packed dense
// matrices (BitMatrix) and additionally provides a CSR sparse form, as the
// paper notes sparse representations can further cut memory at some
// conversion cost.
package matrix

import (
	"fmt"

	"repro/internal/bitvec"
)

// BitMatrix is a dense boolean matrix with bit-packed rows. Row i is a
// bitvec.Vector of length Cols; for an assignment matrix, cell (i, j) is
// set iff role i is assigned user/permission j.
type BitMatrix struct {
	rows []*bitvec.Vector
	cols int
}

// NewBitMatrix returns an all-zero matrix with the given shape.
func NewBitMatrix(rows, cols int) *BitMatrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative shape %dx%d", rows, cols))
	}
	m := &BitMatrix{
		rows: make([]*bitvec.Vector, rows),
		cols: cols,
	}
	for i := range m.rows {
		m.rows[i] = bitvec.New(cols)
	}
	return m
}

// FromRows builds a BitMatrix that adopts the given row vectors. All rows
// must share the same length; the matrix takes ownership of the slices.
func FromRows(rows []*bitvec.Vector) (*BitMatrix, error) {
	if len(rows) == 0 {
		return &BitMatrix{}, nil
	}
	cols := rows[0].Len()
	for i, r := range rows {
		if r.Len() != cols {
			return nil, fmt.Errorf("matrix: row %d has length %d, want %d", i, r.Len(), cols)
		}
	}
	return &BitMatrix{rows: rows, cols: cols}, nil
}

// Rows returns the number of rows.
func (m *BitMatrix) Rows() int { return len(m.rows) }

// Cols returns the number of columns.
func (m *BitMatrix) Cols() int { return m.cols }

// checkRow panics if i is out of range.
func (m *BitMatrix) checkRow(i int) {
	if i < 0 || i >= len(m.rows) {
		panic(fmt.Sprintf("matrix: row %d out of range [0,%d)", i, len(m.rows)))
	}
}

// Set sets cell (i, j) to 1.
func (m *BitMatrix) Set(i, j int) {
	m.checkRow(i)
	m.rows[i].Set(j)
}

// Clear sets cell (i, j) to 0.
func (m *BitMatrix) Clear(i, j int) {
	m.checkRow(i)
	m.rows[i].Clear(j)
}

// Get reports whether cell (i, j) is set.
func (m *BitMatrix) Get(i, j int) bool {
	m.checkRow(i)
	return m.rows[i].Get(j)
}

// Row returns row i. The returned vector aliases the matrix storage;
// callers that need an independent copy must Clone it.
func (m *BitMatrix) Row(i int) *bitvec.Vector {
	m.checkRow(i)
	return m.rows[i]
}

// RowSum returns the number of set cells in row i — the role's degree
// toward users (RUAM) or permissions (RPAM). The linear-time detectors
// for inefficiency classes 1-3 are built entirely on these sums.
func (m *BitMatrix) RowSum(i int) int {
	m.checkRow(i)
	return m.rows[i].Count()
}

// RowSums returns the per-row set-bit counts for all rows.
func (m *BitMatrix) RowSums() []int {
	out := make([]int, len(m.rows))
	for i, r := range m.rows {
		out[i] = r.Count()
	}
	return out
}

// ColSums returns the per-column set-bit counts. Zero entries identify
// standalone user/permission nodes (inefficiency class 1).
func (m *BitMatrix) ColSums() []int {
	out := make([]int, m.cols)
	for _, r := range m.rows {
		r.ForEach(func(j int) bool {
			out[j]++
			return true
		})
	}
	return out
}

// ZeroCols returns the indices of all-zero columns in ascending order.
func (m *BitMatrix) ZeroCols() []int {
	sums := m.ColSums()
	var out []int
	for j, s := range sums {
		if s == 0 {
			out = append(out, j)
		}
	}
	return out
}

// Count returns the total number of set cells (edges).
func (m *BitMatrix) Count() int {
	total := 0
	for _, r := range m.rows {
		total += r.Count()
	}
	return total
}

// Density returns Count / (Rows*Cols), or 0 for an empty matrix.
func (m *BitMatrix) Density() float64 {
	cells := m.Rows() * m.Cols()
	if cells == 0 {
		return 0
	}
	return float64(m.Count()) / float64(cells)
}

// Clone returns a deep copy of the matrix.
func (m *BitMatrix) Clone() *BitMatrix {
	out := &BitMatrix{
		rows: make([]*bitvec.Vector, len(m.rows)),
		cols: m.cols,
	}
	for i, r := range m.rows {
		out.rows[i] = r.Clone()
	}
	return out
}

// Equal reports whether two matrices have identical shape and cells.
func (m *BitMatrix) Equal(o *BitMatrix) bool {
	if m.Rows() != o.Rows() || m.cols != o.cols {
		return false
	}
	for i, r := range m.rows {
		if !r.Equal(o.rows[i]) {
			return false
		}
	}
	return true
}

// Transpose returns a new matrix with rows and columns swapped.
func (m *BitMatrix) Transpose() *BitMatrix {
	t := NewBitMatrix(m.cols, m.Rows())
	for i, r := range m.rows {
		r.ForEach(func(j int) bool {
			t.rows[j].Set(i)
			return true
		})
	}
	return t
}

// AppendRow adds a row to the bottom of the matrix. The row must match
// the matrix width; on an empty matrix it defines the width.
func (m *BitMatrix) AppendRow(r *bitvec.Vector) error {
	if len(m.rows) == 0 && m.cols == 0 {
		m.cols = r.Len()
	}
	if r.Len() != m.cols {
		return fmt.Errorf("matrix: appended row length %d, want %d", r.Len(), m.cols)
	}
	m.rows = append(m.rows, r)
	return nil
}

// String renders small matrices for debugging, one 0/1 row per line.
func (m *BitMatrix) String() string {
	s := ""
	for i, r := range m.rows {
		if i > 0 {
			s += "\n"
		}
		s += r.String()
	}
	return s
}
