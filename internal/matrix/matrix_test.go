package matrix

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func TestNewBitMatrixShape(t *testing.T) {
	m := NewBitMatrix(3, 5)
	if m.Rows() != 3 || m.Cols() != 5 {
		t.Fatalf("shape = %dx%d, want 3x5", m.Rows(), m.Cols())
	}
	if m.Count() != 0 {
		t.Fatalf("Count = %d, want 0", m.Count())
	}
}

func TestNegativeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBitMatrix(-1, 2) did not panic")
		}
	}()
	NewBitMatrix(-1, 2)
}

func TestSetGetClear(t *testing.T) {
	m := NewBitMatrix(2, 70)
	m.Set(0, 0)
	m.Set(1, 69)
	if !m.Get(0, 0) || !m.Get(1, 69) {
		t.Fatal("Get after Set failed")
	}
	if m.Get(0, 69) {
		t.Fatal("unset cell reads true")
	}
	m.Clear(1, 69)
	if m.Get(1, 69) {
		t.Fatal("Clear failed")
	}
}

func TestRowOutOfRangePanics(t *testing.T) {
	m := NewBitMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Row(5) did not panic")
		}
	}()
	m.Row(5)
}

func TestFromRows(t *testing.T) {
	rows := []*bitvec.Vector{
		bitvec.FromIndices(4, []int{0}),
		bitvec.FromIndices(4, []int{1, 2}),
	}
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if !m.Get(1, 2) {
		t.Fatal("cell (1,2) not set")
	}
}

func TestFromRowsMismatch(t *testing.T) {
	rows := []*bitvec.Vector{bitvec.New(3), bitvec.New(4)}
	if _, err := FromRows(rows); err == nil {
		t.Fatal("FromRows accepted mismatched row lengths")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 {
		t.Fatal("empty FromRows produced rows")
	}
}

// paperRUAM builds the RUAM from Figure 1 of the paper: 5 roles × 4 users.
// R01={U01}, R02={U01,U02}, R03={}, R04={U01,U02}, R05={U04}.
func paperRUAM() *BitMatrix {
	m := NewBitMatrix(5, 4)
	m.Set(0, 0)
	m.Set(1, 0)
	m.Set(1, 1)
	m.Set(3, 0)
	m.Set(3, 1)
	m.Set(4, 3)
	return m
}

func TestRowSumsPaperExample(t *testing.T) {
	m := paperRUAM()
	want := []int{1, 2, 0, 2, 1}
	if got := m.RowSums(); !reflect.DeepEqual(got, want) {
		t.Fatalf("RowSums = %v, want %v", got, want)
	}
	if got := m.RowSum(1); got != 2 {
		t.Fatalf("RowSum(1) = %d, want 2", got)
	}
}

func TestColSumsAndZeroCols(t *testing.T) {
	m := paperRUAM()
	want := []int{3, 2, 0, 1}
	if got := m.ColSums(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ColSums = %v, want %v", got, want)
	}
	if got := m.ZeroCols(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("ZeroCols = %v, want [2]", got)
	}
}

func TestCountDensity(t *testing.T) {
	m := paperRUAM()
	if got := m.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := m.Density(); got != 6.0/20.0 {
		t.Fatalf("Density = %v, want 0.3", got)
	}
	var empty BitMatrix
	if empty.Density() != 0 {
		t.Fatal("empty Density != 0")
	}
}

func TestCloneEqual(t *testing.T) {
	m := paperRUAM()
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(2, 2)
	if m.Equal(c) {
		t.Fatal("mutating clone affected equality with original")
	}
	if m.Get(2, 2) {
		t.Fatal("mutating clone mutated original")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewBitMatrix(2, 3).Equal(NewBitMatrix(3, 2)) {
		t.Fatal("different shapes compared equal")
	}
}

func TestTranspose(t *testing.T) {
	m := paperRUAM()
	tr := m.Transpose()
	if tr.Rows() != 4 || tr.Cols() != 5 {
		t.Fatalf("transpose shape = %dx%d, want 4x5", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.Get(i, j) != tr.Get(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !tr.Transpose().Equal(m) {
		t.Fatal("double transpose != original")
	}
}

func TestAppendRow(t *testing.T) {
	var m BitMatrix
	if err := m.AppendRow(bitvec.FromIndices(3, []int{1})); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendRow(bitvec.FromIndices(3, []int{2})); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape after append = %dx%d", m.Rows(), m.Cols())
	}
	if err := m.AppendRow(bitvec.New(4)); err == nil {
		t.Fatal("AppendRow accepted wrong width")
	}
}

func TestString(t *testing.T) {
	m := NewBitMatrix(2, 3)
	m.Set(0, 1)
	m.Set(1, 2)
	if got := m.String(); got != "010\n001" {
		t.Fatalf("String = %q", got)
	}
}

func randMatrix(r *rand.Rand, rows, cols int, density float64) *BitMatrix {
	m := NewBitMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				m.Set(i, j)
			}
		}
	}
	return m
}

func TestCSRRoundTrip(t *testing.T) {
	m := paperRUAM()
	c := CSRFromDense(m)
	if c.NNZ() != m.Count() {
		t.Fatalf("NNZ = %d, want %d", c.NNZ(), m.Count())
	}
	if !c.ToDense().Equal(m) {
		t.Fatal("CSR round trip lost cells")
	}
}

func TestCSRRowColsAndGet(t *testing.T) {
	c := CSRFromDense(paperRUAM())
	if got := c.RowCols(1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("RowCols(1) = %v, want [0 1]", got)
	}
	if got := c.RowCols(2); len(got) != 0 {
		t.Fatalf("RowCols(2) = %v, want empty", got)
	}
	if !c.Get(4, 3) || c.Get(4, 0) {
		t.Fatal("CSR Get mismatch")
	}
	if c.RowSum(3) != 2 {
		t.Fatalf("RowSum(3) = %d, want 2", c.RowSum(3))
	}
}

func TestCSRColSums(t *testing.T) {
	c := CSRFromDense(paperRUAM())
	if got := c.ColSums(); !reflect.DeepEqual(got, []int{3, 2, 0, 1}) {
		t.Fatalf("ColSums = %v", got)
	}
}

func TestCSRFromTriplets(t *testing.T) {
	c, err := CSRFromTriplets(3, 3, [][2]int{{0, 2}, {0, 0}, {0, 2}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RowCols(0); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("RowCols(0) = %v, want deduplicated sorted [0 2]", got)
	}
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", c.NNZ())
	}
}

func TestCSRFromTripletsOutOfRange(t *testing.T) {
	if _, err := CSRFromTriplets(2, 2, [][2]int{{2, 0}}); err == nil {
		t.Fatal("accepted out-of-range row")
	}
	if _, err := CSRFromTriplets(2, 2, [][2]int{{0, -1}}); err == nil {
		t.Fatal("accepted negative column")
	}
}

func TestCSRIntersectionAndHamming(t *testing.T) {
	m := paperRUAM()
	c := CSRFromDense(m)
	// Rows R02 (idx 1) and R04 (idx 3) are identical: {U01, U02}.
	if got := c.IntersectionCount(1, 3); got != 2 {
		t.Fatalf("IntersectionCount(1,3) = %d, want 2", got)
	}
	if got := c.Hamming(1, 3); got != 0 {
		t.Fatalf("Hamming(1,3) = %d, want 0", got)
	}
	if got := c.Hamming(0, 4); got != 2 {
		t.Fatalf("Hamming(0,4) = %d, want 2", got)
	}
}

func TestPropertyCSRMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(20)
		cols := 1 + r.Intn(60)
		m := randMatrix(r, rows, cols, 0.3)
		c := CSRFromDense(m)
		if !c.ToDense().Equal(m) {
			return false
		}
		a, b := r.Intn(rows), r.Intn(rows)
		if c.IntersectionCount(a, b) != m.Row(a).IntersectionCount(m.Row(b)) {
			return false
		}
		return c.Hamming(a, b) == m.Row(a).Hamming(m.Row(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryEstimates(t *testing.T) {
	m := NewBitMatrix(100, 1000)
	for i := 0; i < 100; i++ {
		m.Set(i, i)
	}
	c := CSRFromDense(m)
	dense := MemoryBytesDense(100, 1000)
	if dense != 8*100*16 {
		t.Fatalf("dense estimate = %d", dense)
	}
	// 100 nnz + 101 row pointers, far below the dense footprint.
	if c.MemoryBytes() >= dense {
		t.Fatalf("sparse %d should beat dense %d at this density", c.MemoryBytes(), dense)
	}
}

func TestNewCSRNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCSR(-1, 1) did not panic")
		}
	}()
	NewCSR(-1, 1)
}
