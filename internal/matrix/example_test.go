package matrix_test

import (
	"fmt"

	"repro/internal/matrix"
)

// Example builds a small RUAM, reads the row/column sums the linear
// detectors use, and converts to the sparse form.
func Example() {
	m := matrix.NewBitMatrix(3, 4)
	m.Set(0, 0)
	m.Set(0, 1)
	m.Set(2, 3)

	fmt.Println("row sums:", m.RowSums())
	fmt.Println("zero cols:", m.ZeroCols())

	c := matrix.CSRFromDense(m)
	fmt.Println("nnz:", c.NNZ())
	fmt.Println("round trip ok:", c.ToDense().Equal(m))
	// Output:
	// row sums: [2 0 1]
	// zero cols: [2]
	// nnz: 3
	// round trip ok: true
}
