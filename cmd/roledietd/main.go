// Command roledietd serves the RBAC inefficiency detection framework
// over HTTP. See internal/server for the endpoint contract.
//
//	roledietd -addr :8080
//	curl -X POST --data-binary @org.json 'localhost:8080/v1/analyze?sparse=true'
//
// Resilience knobs (see internal/server for the error contract):
//
//	-request-timeout  per-request deadline; analyses exceeding it stop
//	                  computing and the client gets 504 (0 disables)
//	-max-concurrent   in-flight /v1/* request cap; excess load is shed
//	                  with 429 + Retry-After (0 disables)
//	-drain-timeout    graceful-shutdown grace on SIGINT/SIGTERM; when
//	                  it expires, in-flight analyses are cancelled so
//	                  they stop burning CPU and connections are closed
//
// Async job knobs (POST /v1/jobs and friends; see internal/server):
//
//	-job-workers     worker goroutines executing queued jobs
//	-job-queue       queued-job backlog; full queue sheds with 429
//	-job-result-ttl  how long finished job results stay fetchable
//
// Engine knobs:
//
//	-default-workers  grouping workers applied to requests that don't
//	                  set workers themselves (via the workers query
//	                  parameter or the options body); >= 2 parallelises
//
// Streaming ingest and mutation-session knobs (see internal/server and
// internal/session):
//
//	-max-upload-bytes  decompressed byte cap for POST /v1/datasets,
//	                   enforced while the upload streams (400
//	                   payload_too_large past it); 0 uses -max-body-mib
//	-session-ttl       idle expiry for live mutation sessions
//	-max-sessions      live session cap per node (429 beyond it)
//
// Dataset registry and result cache knobs (see internal/store):
//
//	-store-dir        directory persisting registered datasets and warm
//	                  cache entries across restarts; empty keeps the
//	                  store memory-only
//	-store-max-bytes  byte budget shared by datasets and cached results;
//	                  least-recently-used entries are evicted beyond it
//	-store-ttl        how long cached analysis results stay servable
//
// Fleet knobs (sharded multi-node deployment; see internal/fleet):
//
//	-peers                comma-separated base URLs of every node,
//	                      this one included; empty runs single-node
//	-self                 this node's own URL from the -peers list
//	-node-id              stable name reported by /healthz and stats
//	-replicas             extra holders per dataset beyond the owner
//	-peer-timeout         per-attempt deadline for any peer call
//	-peer-retries         attempts per peer call (retries = n-1)
//	-peer-probe-interval  async /healthz probe cadence; <0 disables
//	-peer-breaker-threshold / -peer-breaker-cooldown
//	                      consecutive failures opening a peer's
//	                      circuit, and how long it stays open
//	-fault-inject         deterministic fault spec for the peer
//	                      transport (testing only); the ROLEDIET_FAULT
//	                      environment variable is the fallback
//
// Continuous-audit knobs (schedules, alert rules, webhook sinks, and
// the decision log; see internal/continuous and internal/server):
//
//	-schedule-min-interval  floor for POST /v1/schedules intervals
//	-decision-buffer / -decision-flush-interval
//	                        decision-log flush batching; with -store-dir
//	                        set the log persists to
//	                        <store-dir>/decisions.jsonl and is replayed
//	                        on restart
//	-sink-attempts / -sink-timeout
//	                        webhook delivery attempts per alert and the
//	                        per-attempt deadline
//	-sink-breaker-threshold / -sink-breaker-cooldown
//	                        consecutive delivery failures opening a
//	                        sink's circuit, and how long it stays open
//	-sink-fault-inject      deterministic fault spec for the webhook
//	                        transport (testing only; ROLEDIET_SINK_FAULT
//	                        env is the fallback)
//
// /healthz and /metrics are exempt from the timeout and the limiter, so probes keep
// answering while the service is saturated or draining; its JSON body
// reports the node ID, build revision, boot ID, and ready/draining
// state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("roledietd", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", ":8080", "listen address")
		maxBodyMiB     = fs.Int64("max-body-mib", 256, "maximum request body size in MiB")
		readTimeout    = fs.Duration("read-timeout", 2*time.Minute, "HTTP read timeout")
		requestTimeout = fs.Duration("request-timeout", 5*time.Minute,
			"per-request deadline including analysis; 0 disables (504 on expiry)")
		maxConcurrent = fs.Int("max-concurrent", 2*runtime.GOMAXPROCS(0),
			"maximum concurrently handled /v1/* requests; 0 disables (429 when exceeded)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second,
			"graceful-shutdown grace before in-flight analyses are cancelled")
		jobWorkers = fs.Int("job-workers", runtime.GOMAXPROCS(0),
			"worker goroutines executing async jobs")
		jobQueue = fs.Int("job-queue", 64,
			"async job queue depth; submissions beyond it are shed with 429")
		jobResultTTL = fs.Duration("job-result-ttl", 15*time.Minute,
			"retention of finished async job results before they expire (404)")
		defaultWorkers = fs.Int("default-workers", 0,
			"grouping workers applied to requests that don't set workers themselves; 0 keeps the serial default, >= 2 parallelises")
		maxUploadBytes = fs.Int64("max-upload-bytes", 0,
			"byte cap for POST /v1/datasets bodies (decompressed), enforced as the upload streams; 0 uses -max-body-mib")
		sessionTTL = fs.Duration("session-ttl", 30*time.Minute,
			"idle expiry for live mutation sessions (POST /v1/sessions)")
		maxSessions = fs.Int("max-sessions", 128,
			"live mutation session cap per node; creations beyond it are shed with 429")
		storeDir = fs.String("store-dir", "",
			"directory persisting registered datasets and warm cache entries across restarts; empty keeps the store memory-only")
		storeMaxBytes = fs.Int64("store-max-bytes", 512<<20,
			"byte budget shared by registered datasets and cached results; LRU eviction beyond it")
		storeTTL = fs.Duration("store-ttl", time.Hour,
			"retention of cached analysis results")
		peers = fs.String("peers", "",
			"comma-separated base URLs of every fleet node, this one included; empty runs single-node")
		self = fs.String("self", "",
			"this node's own base URL from the -peers list; required when -peers is set")
		nodeID = fs.String("node-id", "",
			"stable node name reported by /healthz and fleet stats; defaults to a per-process identifier")
		replicas = fs.Int("replicas", 1,
			"extra holders per dataset beyond its rendezvous owner")
		peerTimeout = fs.Duration("peer-timeout", 2*time.Second,
			"per-attempt deadline for any single peer call")
		peerRetries = fs.Int("peer-retries", 3,
			"attempts per peer call including the first; capped exponential backoff with full jitter between them")
		peerProbeInterval = fs.Duration("peer-probe-interval", time.Second,
			"async peer /healthz probe cadence; negative disables probing")
		breakerThreshold = fs.Int("peer-breaker-threshold", 3,
			"consecutive failures (requests or probes) that open a peer's circuit")
		breakerCooldown = fs.Duration("peer-breaker-cooldown", 5*time.Second,
			"how long an open circuit waits before trialling the peer again")
		faultInject = fs.String("fault-inject", "",
			"deterministic fault spec for the peer transport, e.g. drop:2,delay:100ms (testing; ROLEDIET_FAULT env is the fallback)")
		scheduleMinInterval = fs.Duration("schedule-min-interval", 30*time.Second,
			"floor for continuous-audit schedule intervals (POST /v1/schedules)")
		decisionBuffer = fs.Int("decision-buffer", 0,
			"decision-log flush batch size; 0 uses the subsystem default")
		decisionFlushInterval = fs.Duration("decision-flush-interval", 0,
			"decision-log flush timer; 0 uses the subsystem default")
		sinkAttempts = fs.Int("sink-attempts", 3,
			"webhook delivery attempts per alert including the first; capped exponential backoff between them")
		sinkTimeout = fs.Duration("sink-timeout", 5*time.Second,
			"per-attempt deadline for one webhook POST")
		sinkBreakerThreshold = fs.Int("sink-breaker-threshold", 3,
			"consecutive delivery failures that open a sink's circuit")
		sinkBreakerCooldown = fs.Duration("sink-breaker-cooldown", 5*time.Second,
			"how long an open sink circuit waits before trialling the sink again")
		sinkFaultInject = fs.String("sink-fault-inject", "",
			"deterministic fault spec for the webhook transport, e.g. 5xx:2 (testing; ROLEDIET_SINK_FAULT env is the fallback)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Every request context derives from baseCtx; cancelling it aborts
	// the engine loops of any analysis still in flight.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()

	st, err := store.New(store.Options{
		Dir:         *storeDir,
		MaxBytes:    *storeMaxBytes,
		TTL:         *storeTTL,
		BaseContext: baseCtx,
		Logf:        log.Printf,
	})
	if err != nil {
		return fmt.Errorf("open store: %w", err)
	}
	defer st.Close()

	// ready flips to false the moment a shutdown signal arrives, so
	// /healthz reports "draining" while in-flight work finishes and
	// peers stop routing new fleet work here.
	var ready atomic.Bool
	ready.Store(true)

	var fl *fleet.Fleet
	if *peers != "" {
		spec := *faultInject
		if spec == "" {
			spec = os.Getenv("ROLEDIET_FAULT")
		}
		fl, err = fleet.New(fleet.Options{
			Self:             *self,
			Peers:            strings.Split(*peers, ","),
			Replicas:         *replicas,
			AttemptTimeout:   *peerTimeout,
			MaxAttempts:      *peerRetries,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			ProbeInterval:    *peerProbeInterval,
			FaultSpec:        spec,
			BaseContext:      baseCtx,
			Logf:             log.Printf,
		})
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		defer fl.Close()
	}

	// The decision log persists next to the store when one is on disk;
	// a memory-only store keeps the log memory-only too.
	decisionLogPath := ""
	if *storeDir != "" {
		decisionLogPath = filepath.Join(*storeDir, "decisions.jsonl")
	}
	sinkSpec := *sinkFaultInject
	if sinkSpec == "" {
		sinkSpec = os.Getenv("ROLEDIET_SINK_FAULT")
	}
	sinkTransport, err := fleet.NewInjector(sinkSpec, nil)
	if err != nil {
		return fmt.Errorf("sink-fault-inject: %w", err)
	}
	var sinkRT http.RoundTripper
	if sinkTransport != nil {
		sinkRT = sinkTransport
	}

	hnd := server.NewHandler(server.Options{
		Store:          st,
		Fleet:          fl,
		NodeID:         *nodeID,
		Readiness:      ready.Load,
		MaxBodyBytes:   *maxBodyMiB << 20,
		MaxUploadBytes: *maxUploadBytes,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
		RequestTimeout: *requestTimeout,
		MaxConcurrent:  *maxConcurrent,
		JobWorkers:     *jobWorkers,
		JobQueueDepth:  *jobQueue,
		JobResultTTL:   *jobResultTTL,
		// Jobs outlive their submitting request but not the daemon:
		// cancelling baseCtx during a forced shutdown aborts them too.
		BaseContext:           baseCtx,
		DefaultWorkers:        *defaultWorkers,
		DecisionLogPath:       decisionLogPath,
		DecisionBuffer:        *decisionBuffer,
		DecisionFlushInterval: *decisionFlushInterval,
		ScheduleMinInterval:   *scheduleMinInterval,
		SinkAttempts:          *sinkAttempts,
		SinkTimeout:           *sinkTimeout,
		SinkBreakerThreshold:  *sinkBreakerThreshold,
		SinkBreakerCooldown:   *sinkBreakerCooldown,
		SinkTransport:         sinkRT,
	})
	// The handler owns the continuous-audit scheduler and the buffered
	// decision log; closing it after the drain flushes pending decisions
	// so a graceful restart replays the full log. Runs before the
	// store's own deferred Close (LIFO).
	defer func() {
		if c, ok := hnd.(io.Closer); ok {
			if err := c.Close(); err != nil {
				log.Printf("shutdown: %v", err)
			}
		}
	}()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           hnd,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	errCh := make(chan error, 1)
	go func() {
		log.Printf("roledietd listening on %s (request-timeout=%s max-concurrent=%d)",
			*addr, *requestTimeout, *maxConcurrent)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigCh:
		ready.Store(false) // /healthz now reports draining
		log.Printf("received %v, draining for up to %s", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// The drain grace expired with requests still running.
			// Cancel their contexts so the engine stops burning CPU,
			// then force-close the connections.
			log.Printf("drain timed out: cancelling in-flight analyses")
			cancelBase()
			if cerr := srv.Close(); cerr != nil {
				return fmt.Errorf("close after drain timeout: %w", cerr)
			}
		}
		<-errCh // wait for ListenAndServe to return
		return nil
	}
}
