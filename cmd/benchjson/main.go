// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON snapshot, so benchmark runs can be committed,
// diffed, and compared across commits without scraping logs.
//
//	go test -bench 'Ablation' -benchmem -cpu 1,4 . | go run ./cmd/benchjson > bench.json
//
// Repeated runs of the same benchmark (`-count=N`) are folded into one
// entry carrying the per-metric median, with the min/max spread and the
// sample count recorded alongside, so committed snapshots stay stable
// under scheduler noise without hiding it:
//
//	{
//	  "context": {"goos": "...", "goarch": "...", "pkg": "...", "cpu": "...", "gomaxprocs": N},
//	  "benchmarks": [
//	    {"name": "BenchmarkX/sub", "procs": 4, "iterations": 100, "samples": 5,
//	     "metrics": {"ns/op": 123.4, "B/op": 567, "allocs/op": 8},
//	     "spread": {"ns/op": {"min": 119.1, "max": 131.0}}},
//	    ...
//	  ]
//	}
//
// With -against <baseline.json> the new snapshot is additionally
// compared to a previously committed one: every benchmark present in
// both whose median ns/op regressed by more than -warn-pct percent gets
// a GitHub-annotation `::warning::` line on stderr. The comparison is a
// tripwire, not a gate — the exit status stays 0 — because shared
// runners have noisy neighbours and timing shifts should inform review,
// not block merges.
//
// Unknown metric units pass through verbatim; lines that are not
// benchmark results or context headers are ignored, so the tool can
// consume a full `go test` transcript including PASS/ok trailers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one aggregated benchmark: the median of every sample that
// shared the same name and procs count.
type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Samples    int                `json:"samples,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
	Spread     map[string]minMax  `json:"spread,omitempty"`
}

// minMax records the extremes behind a median.
type minMax struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// snapshot is the file layout benchjson emits.
type snapshot struct {
	Context    map[string]any `json:"context"`
	Benchmarks []result       `json:"benchmarks"`
}

func main() {
	against := flag.String("against", "", "baseline snapshot to diff the new one against (warnings on stderr, never fails)")
	warnPct := flag.Float64("warn-pct", 25, "ns/op regression percentage that triggers a ::warning:: in -against mode")
	flag.Parse()

	snap, err := buildSnapshot(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *against == "" {
		return
	}
	// Tripwire mode: a missing or malformed baseline degrades to a note,
	// not a failure — first runs on a fresh branch have nothing to diff.
	data, err := os.ReadFile(*against)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: no usable baseline:", err)
		return
	}
	var base snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: no usable baseline:", err)
		return
	}
	compare(snap, &base, *warnPct, os.Stderr)
}

// run parses a `go test -bench` transcript, folds repeated samples, and
// writes the JSON snapshot.
func run(in io.Reader, out io.Writer) error {
	snap, err := buildSnapshot(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// sampleSet accumulates every parsed line for one (name, procs) key.
type sampleSet struct {
	name       string
	procs      int
	iterations []int64
	metrics    map[string][]float64
}

// buildSnapshot parses and aggregates a transcript.
func buildSnapshot(in io.Reader) (*snapshot, error) {
	snap := &snapshot{
		Context:    map[string]any{"gomaxprocs": runtime.GOMAXPROCS(0)},
		Benchmarks: []result{},
	}
	var order []string
	sets := make(map[string]*sampleSet)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			snap.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseLine(line)
			if !ok {
				continue
			}
			key := r.Name + "\x00" + strconv.Itoa(r.Procs)
			set := sets[key]
			if set == nil {
				set = &sampleSet{name: r.Name, procs: r.Procs, metrics: make(map[string][]float64)}
				sets[key] = set
				order = append(order, key)
			}
			set.iterations = append(set.iterations, r.Iterations)
			for unit, v := range r.Metrics {
				set.metrics[unit] = append(set.metrics[unit], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	for _, key := range order {
		snap.Benchmarks = append(snap.Benchmarks, sets[key].fold())
	}
	return snap, nil
}

// fold reduces a sample set to its median entry. Spread and the sample
// count are only recorded for multi-sample sets, so single-run
// snapshots keep the legacy shape byte-for-byte.
func (s *sampleSet) fold() result {
	r := result{
		Name:       s.name,
		Procs:      s.procs,
		Iterations: medianInt64(s.iterations),
		Metrics:    make(map[string]float64, len(s.metrics)),
	}
	multi := len(s.iterations) > 1
	if multi {
		r.Samples = len(s.iterations)
		r.Spread = make(map[string]minMax, len(s.metrics))
	}
	for unit, vals := range s.metrics {
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		r.Metrics[unit] = median(sorted)
		if multi {
			r.Spread[unit] = minMax{Min: sorted[0], Max: sorted[len(sorted)-1]}
		}
	}
	return r
}

// median of an already-sorted slice; even lengths average the middle
// pair.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func medianInt64(vals []int64) int64 {
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// compare emits one ::warning:: line per benchmark whose median ns/op
// regressed past the threshold, plus a closing summary. It never fails:
// the warnings surface in the GitHub UI while the job stays green.
func compare(cur, base *snapshot, warnPct float64, w io.Writer) {
	baseline := make(map[string]result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name+"\x00"+strconv.Itoa(b.Procs)] = b
	}
	regressed := 0
	for _, b := range cur.Benchmarks {
		old, ok := baseline[b.Name+"\x00"+strconv.Itoa(b.Procs)]
		if !ok {
			continue
		}
		oldNs, newNs := old.Metrics["ns/op"], b.Metrics["ns/op"]
		if oldNs <= 0 || newNs <= 0 {
			continue
		}
		pct := (newNs/oldNs - 1) * 100
		if pct > warnPct {
			regressed++
			fmt.Fprintf(w, "::warning::benchjson: %s ns/op regressed %.1f%% (%.0f -> %.0f)\n",
				b.Name, pct, oldNs, newNs)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(w, "::warning::benchjson: %d benchmark(s) regressed more than %.0f%% vs baseline (non-blocking)\n",
			regressed, warnPct)
	} else {
		fmt.Fprintf(w, "benchjson: no ns/op regression beyond %.0f%% vs baseline\n", warnPct)
	}
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName[-procs] <iterations> (<value> <unit>)+
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	name := fields[0]
	procs := 1
	// The -N suffix is GOMAXPROCS for the run; strip it off the last
	// path element only, so sub-benchmark names keep their dashes.
	if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/') {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			procs = n
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	metrics := make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		metrics[fields[i+1]] = v
	}
	return result{Name: name, Procs: procs, Iterations: iters, Metrics: metrics}, true
}
