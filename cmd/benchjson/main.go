// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON snapshot, so benchmark runs can be committed,
// diffed, and compared across commits without scraping logs.
//
//	go test -bench 'Ablation' -benchmem -cpu 1,4 . | go run ./cmd/benchjson > bench.json
//
// The output is one object:
//
//	{
//	  "context": {"goos": "...", "goarch": "...", "pkg": "...", "cpu": "...", "gomaxprocs": N},
//	  "benchmarks": [
//	    {"name": "BenchmarkX/sub", "procs": 4, "iterations": 100,
//	     "metrics": {"ns/op": 123.4, "B/op": 567, "allocs/op": 8}},
//	    ...
//	  ]
//	}
//
// Unknown metric units pass through verbatim; lines that are not
// benchmark results or context headers are ignored, so the tool can
// consume a full `go test` transcript including PASS/ok trailers.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// snapshot is the file layout benchjson emits.
type snapshot struct {
	Context    map[string]any `json:"context"`
	Benchmarks []result       `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	snap := snapshot{
		Context:    map[string]any{"gomaxprocs": runtime.GOMAXPROCS(0)},
		Benchmarks: []result{},
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			snap.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseLine(line)
			if ok {
				snap.Benchmarks = append(snap.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName[-procs] <iterations> (<value> <unit>)+
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	name := fields[0]
	procs := 1
	// The -N suffix is GOMAXPROCS for the run; strip it off the last
	// path element only, so sub-benchmark names keep their dashes.
	if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/') {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			procs = n
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	metrics := make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		metrics[fields[i+1]] = v
	}
	return result{Name: name, Procs: procs, Iterations: iters, Metrics: metrics}, true
}
