package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAblationParallel/serial         	       2	 500000000 ns/op	 1000000 B/op	    5000 allocs/op
BenchmarkAblationParallel/workers=4-4    	       4	 250000000 ns/op	 1200000 B/op	    5200 allocs/op
BenchmarkFigure2/users=1000/rolediet-2   	      10	  10000000 ns/op
PASS
ok  	repro	12.345s
`

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Context["goos"] != "linux" || snap.Context["pkg"] != "repro" {
		t.Fatalf("context = %v", snap.Context)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(snap.Benchmarks))
	}
	b0 := snap.Benchmarks[0]
	if b0.Name != "BenchmarkAblationParallel/serial" || b0.Procs != 1 || b0.Iterations != 2 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.Metrics["allocs/op"] != 5000 {
		t.Fatalf("b0 metrics = %v", b0.Metrics)
	}
	b1 := snap.Benchmarks[1]
	if b1.Name != "BenchmarkAblationParallel/workers=4" || b1.Procs != 4 {
		t.Fatalf("b1 = %+v", b1)
	}
	b2 := snap.Benchmarks[2]
	if b2.Name != "BenchmarkFigure2/users=1000/rolediet" || b2.Procs != 2 {
		t.Fatalf("b2 = %+v", b2)
	}
}

// TestRunFoldsRepeatedSamples: `-count=N` transcripts collapse to one
// entry per benchmark with the median in metrics and the extremes in
// spread.
func TestRunFoldsRepeatedSamples(t *testing.T) {
	const repeated = `goos: linux
BenchmarkKernelHamming-4   100	 300 ns/op	 8 B/op	 1 allocs/op
BenchmarkKernelHamming-4   110	 100 ns/op	 8 B/op	 1 allocs/op
BenchmarkKernelHamming-4   105	 200 ns/op	 8 B/op	 1 allocs/op
PASS
`
	var out bytes.Buffer
	if err := run(strings.NewReader(repeated), &out); err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d, want 1 folded entry", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Samples != 3 || b.Iterations != 105 {
		t.Fatalf("samples/iterations = %d/%d, want 3/105", b.Samples, b.Iterations)
	}
	if b.Metrics["ns/op"] != 200 {
		t.Fatalf("median ns/op = %v, want 200", b.Metrics["ns/op"])
	}
	if sp := b.Spread["ns/op"]; sp.Min != 100 || sp.Max != 300 {
		t.Fatalf("spread = %+v, want {100 300}", sp)
	}
	// Single samples keep the legacy shape: no samples or spread fields.
	var raw struct {
		Benchmarks []map[string]json.RawMessage `json:"benchmarks"`
	}
	out.Reset()
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, b := range raw.Benchmarks {
		if _, ok := b["samples"]; ok {
			t.Fatal("single-sample entry carries a samples field")
		}
		if _, ok := b["spread"]; ok {
			t.Fatal("single-sample entry carries a spread field")
		}
	}
}

// TestCompare: only regressions past the threshold warn, and the output
// uses the ::warning:: annotation syntax so CI surfaces it non-blocking.
func TestCompare(t *testing.T) {
	base := &snapshot{Benchmarks: []result{
		{Name: "BenchmarkKernelA", Procs: 1, Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkKernelB", Procs: 1, Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkKernelGone", Procs: 1, Metrics: map[string]float64{"ns/op": 100}},
	}}
	cur := &snapshot{Benchmarks: []result{
		{Name: "BenchmarkKernelA", Procs: 1, Metrics: map[string]float64{"ns/op": 140}},
		{Name: "BenchmarkKernelB", Procs: 1, Metrics: map[string]float64{"ns/op": 120}},
		{Name: "BenchmarkKernelNew", Procs: 1, Metrics: map[string]float64{"ns/op": 900}},
	}}
	var buf bytes.Buffer
	compare(cur, base, 25, &buf)
	got := buf.String()
	if !strings.Contains(got, "::warning::benchjson: BenchmarkKernelA ns/op regressed 40.0%") {
		t.Fatalf("missing KernelA warning in:\n%s", got)
	}
	if strings.Contains(got, "BenchmarkKernelB") || strings.Contains(got, "BenchmarkKernelNew") {
		t.Fatalf("warned on a non-regression in:\n%s", got)
	}
	if !strings.Contains(got, "1 benchmark(s) regressed") {
		t.Fatalf("missing summary in:\n%s", got)
	}

	buf.Reset()
	compare(base, base, 25, &buf)
	if strings.Contains(buf.String(), "::warning::") {
		t.Fatalf("self-compare warned:\n%s", buf.String())
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok repro 1s\n"), &out); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestParseLineEdgeCases(t *testing.T) {
	if _, ok := parseLine("BenchmarkBroken 12"); ok {
		t.Fatal("short line accepted")
	}
	if _, ok := parseLine("BenchmarkBroken x 1 ns/op"); ok {
		t.Fatal("bad iteration count accepted")
	}
	// A trailing dash followed by non-digits is part of the name, not a
	// procs suffix.
	r, ok := parseLine("BenchmarkX/mode=a-b 5 100 ns/op")
	if !ok || r.Name != "BenchmarkX/mode=a-b" || r.Procs != 1 {
		t.Fatalf("r = %+v ok=%v", r, ok)
	}
}
