package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAblationParallel/serial         	       2	 500000000 ns/op	 1000000 B/op	    5000 allocs/op
BenchmarkAblationParallel/workers=4-4    	       4	 250000000 ns/op	 1200000 B/op	    5200 allocs/op
BenchmarkFigure2/users=1000/rolediet-2   	      10	  10000000 ns/op
PASS
ok  	repro	12.345s
`

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Context["goos"] != "linux" || snap.Context["pkg"] != "repro" {
		t.Fatalf("context = %v", snap.Context)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(snap.Benchmarks))
	}
	b0 := snap.Benchmarks[0]
	if b0.Name != "BenchmarkAblationParallel/serial" || b0.Procs != 1 || b0.Iterations != 2 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.Metrics["allocs/op"] != 5000 {
		t.Fatalf("b0 metrics = %v", b0.Metrics)
	}
	b1 := snap.Benchmarks[1]
	if b1.Name != "BenchmarkAblationParallel/workers=4" || b1.Procs != 4 {
		t.Fatalf("b1 = %+v", b1)
	}
	b2 := snap.Benchmarks[2]
	if b2.Name != "BenchmarkFigure2/users=1000/rolediet" || b2.Procs != 2 {
		t.Fatalf("b2 = %+v", b2)
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok repro 1s\n"), &out); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestParseLineEdgeCases(t *testing.T) {
	if _, ok := parseLine("BenchmarkBroken 12"); ok {
		t.Fatal("short line accepted")
	}
	if _, ok := parseLine("BenchmarkBroken x 1 ns/op"); ok {
		t.Fatal("bad iteration count accepted")
	}
	// A trailing dash followed by non-digits is part of the name, not a
	// procs suffix.
	r, ok := parseLine("BenchmarkX/mode=a-b 5 100 ns/op")
	if !ok || r.Name != "BenchmarkX/mode=a-b" || r.Procs != 1 {
		t.Fatalf("r = %+v ok=%v", r, ok)
	}
}
