// Command rolediet is the command-line front end of the RBAC
// inefficiency detection framework.
//
// Subcommands:
//
//	generate     write a synthetic dataset (paper generator or org-scale)
//	analyze      run the five detectors over a dataset JSON file
//	consolidate  plan and apply safe class-4 role merges
//	optimize     full remediation plan with a reachability-checked apply
//	sweep        reproduce the Figure 2 / Figure 3 timing sweeps
//	org          reproduce the §IV-B organisation-scale audit table
//
// Run `rolediet <subcommand> -h` for per-command flags.
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rolediet:", err)
		os.Exit(1)
	}
}

// run dispatches to a subcommand. It is the testable entry point.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stderr)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:], stdout)
	case "analyze":
		return cmdAnalyze(args[1:], stdout)
	case "consolidate":
		return cmdConsolidate(args[1:], stdout)
	case "optimize":
		return cmdOptimize(args[1:], stdout)
	case "sweep":
		return cmdSweep(args[1:], stdout, stderr)
	case "org":
		return cmdOrg(args[1:], stdout)
	case "mine":
		return cmdMine(args[1:], stdout)
	case "suggest":
		return cmdSuggest(args[1:], stdout)
	case "diff":
		return cmdDiff(args[1:], stdout)
	case "query":
		return cmdQuery(args[1:], stdout)
	case "reconcile":
		return cmdReconcile(args[1:], stdout)
	case "replay":
		return cmdReplay(args[1:], stdout)
	case "drift":
		return cmdDrift(args[1:], stdout)
	case "bench":
		return cmdBench(args[1:], stdout, stderr)
	case "recall":
		return cmdRecall(args[1:], stdout)
	case "digest":
		return cmdDigest(args[1:], stdout)
	case "webhook":
		return cmdWebhook(args[1:], stdout, stderr)
	case "help", "-h", "--help":
		usage(stdout)
		return nil
	default:
		usage(stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: rolediet <subcommand> [flags]

subcommands:
  generate     write a synthetic RBAC dataset as JSON
  analyze      detect the five inefficiency classes in a dataset
  consolidate  plan and apply safe role merges (class-4 groups)
  optimize     full remediation plan: eliminations, merges, optional mining
  sweep        time the three methods across matrix sizes (Figures 2-3)
  org          run the organisation-scale audit (paper section IV-B)
  mine         rebuild a minimal role set bottom-up (role mining)
  suggest      reviewable merge suggestions for similar roles (grant deltas)
  diff         compare two dataset snapshots and their audits
  query        access-review queries (who holds what, and why)
  reconcile    compute the event log between two snapshots
  replay       apply an event log to a snapshot, auditing at checkpoints
  drift        incremental drift audit between snapshots (server schema)
  bench        run the full evaluation and emit a Markdown report
  recall       quality sweep for the approximate methods (HNSW, LSH)
  digest       print a dataset's content digest (usable as dataset_ref)
  webhook      tiny alert receiver: POST bodies out as JSONL (smoke tests)
  help         show this message
`)
}
