package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hierarchy"
	"repro/internal/rbac"
)

// cmdGenerate writes a synthetic dataset to a JSON file.
func cmdGenerate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	var (
		out   = fs.String("out", "dataset.json", "output JSON path")
		org   = fs.Bool("org", false, "generate the organisation-scale dataset instead of a plain matrix")
		scale = fs.Int("scale", 100, "org mode: divide the paper-scale counts by this factor")
		roles = fs.Int("roles", 1000, "matrix mode: number of roles")
		users = fs.Int("users", 1000, "matrix mode: number of users")
		prop  = fs.Float64("cluster-proportion", 0.2, "matrix mode: fraction of roles in planted clusters")
		maxC  = fs.Int("max-cluster", 10, "matrix mode: maximum identical roles per cluster")
		seed  = fs.Int64("seed", 1, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ds *rbac.Dataset
	if *org {
		var err error
		ds, _, err = gen.Org(gen.DefaultOrgParams().Scaled(*scale))
		if err != nil {
			return err
		}
	} else {
		g, err := gen.Matrix(gen.MatrixParams{
			Rows:              *roles,
			Cols:              *users,
			ClusterProportion: *prop,
			MaxClusterSize:    *maxC,
			Seed:              *seed,
		})
		if err != nil {
			return err
		}
		ds = rbac.NewDataset()
		for u := 0; u < *users; u++ {
			_ = ds.AddUser(rbac.UserID(fmt.Sprintf("u%06d", u)))
		}
		for r := 0; r < *roles; r++ {
			id := rbac.RoleID(fmt.Sprintf("r%06d", r))
			_ = ds.AddRole(id)
			g.Rows[r].ForEach(func(u int) bool {
				_ = ds.AssignUser(id, rbac.UserID(fmt.Sprintf("u%06d", u)))
				return true
			})
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.WriteJSON(f); err != nil {
		return err
	}
	s := ds.Stats()
	fmt.Fprintf(stdout, "wrote %s: %d users, %d roles, %d permissions, %d+%d assignments\n",
		*out, s.Users, s.Roles, s.Permissions, s.UserAssignments, s.PermissionAssignments)
	return nil
}

// applyOptionsJSON overlays the shared core.Options wire schema (the
// same one the server's body envelope and /v1/jobs use) onto opts.
// Keys present in the JSON win over the individual flags, mirroring
// the server's body-wins rule; absent keys leave the flags intact.
func applyOptionsJSON(raw string, opts *core.Options) error {
	if raw == "" {
		return nil
	}
	if err := json.Unmarshal([]byte(raw), opts); err != nil {
		return fmt.Errorf("parse -options: %w", err)
	}
	return nil
}

// loadDataset reads a dataset JSON file.
func loadDataset(path string) (*rbac.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rbac.ReadJSON(f)
}

// cmdAnalyze runs the detection framework over a dataset file.
func cmdAnalyze(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		data      = fs.String("data", "", "dataset JSON path (required)")
		method    = fs.String("method", "rolediet", "group method: rolediet, dbscan, hnsw, lsh or dbscan-float64")
		threshold = fs.Int("threshold", 1, "similar-group threshold k")
		sparse    = fs.Bool("sparse", false, "use the sparse pipeline (rolediet only)")
		workers   = fs.Int("workers", 0, "grouping worker goroutines; 0 or 1 run serially, >= 2 parallelise")
		format    = fs.String("format", "text", "output format: text or json")
		hierPath  = fs.String("hierarchy", "", "inheritance sidecar JSON; flatten before analysing")
		optsJSON  = fs.String("options", "", `analysis options as JSON, e.g. '{"method":"hnsw","threshold":2}' (same schema as the server's body envelope; overrides -method/-threshold)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("analyze: -data is required")
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	if *hierPath != "" {
		f, err := os.Open(*hierPath)
		if err != nil {
			return err
		}
		h, err := hierarchy.ReadEdges(ds, f)
		f.Close()
		if err != nil {
			return err
		}
		if cycles := h.Cycles(); len(cycles) > 0 {
			fmt.Fprintf(stdout, "WARNING: inheritance cycles involving %v\n", cycles)
		}
		if redundant := h.RedundantEdges(); len(redundant) > 0 {
			fmt.Fprintf(stdout, "redundant inheritance edges: %v\n", redundant)
		}
		ds, err = h.Flatten()
		if err != nil {
			return err
		}
	}
	m, err := core.ParseMethod(*method)
	if err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("analyze: -workers %d < 0", *workers)
	}
	opts := core.Options{Method: m, SimilarThreshold: *threshold, Workers: *workers}
	if err := applyOptionsJSON(*optsJSON, &opts); err != nil {
		return err
	}
	var rep *core.Report
	if *sparse {
		rep, err = core.AnalyzeSparse(ds, opts)
	} else {
		rep, err = core.Analyze(ds, opts)
	}
	if err != nil {
		return err
	}
	switch *format {
	case "text":
		fmt.Fprint(stdout, rep.Summary())
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	default:
		return fmt.Errorf("analyze: unknown format %q", *format)
	}
	return nil
}

// cmdConsolidate plans and applies safe merges, writing the reduced
// dataset.
func cmdConsolidate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("consolidate", flag.ContinueOnError)
	var (
		data     = fs.String("data", "", "dataset JSON path (required)")
		out      = fs.String("out", "", "write the consolidated dataset to this path (optional)")
		workers  = fs.Int("workers", 0, "grouping worker goroutines; 0 or 1 run serially, >= 2 parallelise")
		optsJSON = fs.String("options", "", `analysis options as JSON, e.g. '{"method":"rolediet"}' (same schema as the server's body envelope)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("consolidate: -data is required")
	}
	if *workers < 0 {
		return fmt.Errorf("consolidate: -workers %d < 0", *workers)
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	copts := core.Options{Workers: *workers}
	if err := applyOptionsJSON(*optsJSON, &copts); err != nil {
		return err
	}
	after, plan, err := consolidate.Consolidate(ds, copts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "planned %d merges removing %d of %d roles (%.1f%%); safety verified\n",
		len(plan.Merges), plan.RolesRemoved(), ds.NumRoles(),
		100*float64(plan.RolesRemoved())/float64(max(1, ds.NumRoles())))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := after.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote consolidated dataset to %s (%d roles)\n", *out, after.NumRoles())
	}
	return nil
}

// cmdSweep reproduces the Figure 2/3 timing comparisons.
func cmdSweep(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		axis    = fs.String("axis", "roles", "varied dimension: roles (Figure 3) or users (Figure 2)")
		fixed   = fs.Int("fixed", 1000, "size of the fixed dimension")
		values  = fs.String("values", "1000,2000,4000,7000,10000", "comma-separated sweep sizes")
		runs    = fs.Int("runs", 5, "repetitions per measurement")
		methods = fs.String("methods", "rolediet,dbscan,hnsw", "comma-separated methods")
		k       = fs.Int("threshold", 0, "group threshold (0 = same users)")
		csv     = fs.Bool("csv", false, "emit CSV instead of a table")
		plot    = fs.Bool("plot", false, "emit an ASCII chart instead of a table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ax bench.Axis
	switch *axis {
	case "roles":
		ax = bench.AxisRoles
	case "users":
		ax = bench.AxisUsers
	default:
		return fmt.Errorf("sweep: unknown axis %q", *axis)
	}
	var vals []int
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("sweep: bad value %q: %w", s, err)
		}
		vals = append(vals, v)
	}
	var ms []core.Method
	for _, s := range strings.Split(*methods, ",") {
		m, err := core.ParseMethod(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		ms = append(ms, m)
	}
	res, err := bench.RunSweep(bench.SweepConfig{
		Axis:      ax,
		Fixed:     *fixed,
		Values:    vals,
		Methods:   ms,
		Runs:      *runs,
		Threshold: *k,
		Progress:  func(line string) { fmt.Fprintln(stderr, line) },
	})
	if err != nil {
		return err
	}
	switch {
	case *csv:
		fmt.Fprint(stdout, res.CSV())
	case *plot:
		fmt.Fprint(stdout, res.Plot(72, 20))
	default:
		fmt.Fprint(stdout, res.Table())
	}
	return nil
}

// cmdOrg reproduces the §IV-B organisation-scale audit.
func cmdOrg(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("org", flag.ContinueOnError)
	scale := fs.Int("scale", 1, "divide the paper-scale counts by this factor (1 = full 50k-role scale)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunOrg(*scale)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.Table())
	if !res.Matches() {
		return fmt.Errorf("org: detected counts diverge from planted ground truth")
	}
	return nil
}
