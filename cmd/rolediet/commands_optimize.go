package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/optimize"
)

// cmdOptimize runs the full remediation planner over a dataset —
// class-1/2/3 eliminations, class-4/5 merges to convergence, and the
// optional mining pass — prints the explainable plan, and can write
// the optimized dataset and the plan itself. Alternative modes replay
// a saved plan (-apply) or canonicalise plan JSON for byte comparison
// in smoke scripts (-normalize).
func cmdOptimize(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	var (
		data      = fs.String("data", "", "dataset JSON path (required)")
		threshold = fs.Int("threshold", 1, "similar-group threshold k for class-5 merges")
		skipSim   = fs.Bool("skip-similar", false, "plan only the provably safe classes (1-4)")
		mine      = fs.Bool("mine", false, "try the bounded role-mining pass after merging")
		maxEdges  = fs.Int("max-added-edges", 0, "mining budget: assignment edges a mined role set may add")
		maxCand   = fs.Int("max-candidates", 0, "mining candidate-pool cap (0 = unlimited)")
		maxRounds = fs.Int("max-rounds", 0, "cap merge rounds (0 = run to convergence)")
		workers   = fs.Int("workers", 0, "mining worker goroutines; 0 or 1 serial, >= 2 parallel")
		out       = fs.String("out", "", "write the optimized dataset to this path")
		planOut   = fs.String("plan", "", "write the plan JSON to this path")
		format    = fs.String("format", "text", "output format: text or json")
		apply     = fs.String("apply", "", "replay this plan JSON against -data instead of planning")
		normalize = fs.String("normalize", "", `plan-shaped JSON to canonicalise ("-" for stdin)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *normalize != "" {
		return normalizePlan(*normalize, stdout)
	}
	if *data == "" {
		return fmt.Errorf("optimize: -data is required")
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}

	if *apply != "" {
		raw, err := os.ReadFile(*apply)
		if err != nil {
			return err
		}
		plan, err := decodePlan(raw)
		if err != nil {
			return fmt.Errorf("optimize: parse plan %s: %w", *apply, err)
		}
		applied, err := optimize.Apply(ds, plan)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "replayed %d actions: %d roles -> %d roles\n",
			len(plan.Actions), ds.NumRoles(), applied.NumRoles())
		return writeDatasetFile(applied, *out, stdout)
	}

	res, err := optimize.Run(ds, optimize.Knobs{
		Analysis:      core.Options{SimilarThreshold: *threshold, SkipSimilar: *skipSim},
		Mine:          *mine,
		MaxAddedEdges: *maxEdges,
		MaxCandidates: *maxCand,
		MaxRounds:     *maxRounds,
		Workers:       *workers,
	})
	if err != nil {
		return err
	}

	if *format == "json" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		printPlanText(stdout, res)
	}
	if *planOut != "" {
		raw, err := json.MarshalIndent(&res.Plan, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*planOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote plan to %s\n", *planOut)
	}
	return writeDatasetFile(res.Optimized, *out, stdout)
}

// printPlanText renders the human-readable plan: one line per action
// with its savings, then the before/after summary the reviewer signs
// off on.
func printPlanText(w io.Writer, res *optimize.Result) {
	if len(res.Plan.Actions) == 0 {
		fmt.Fprintln(w, "no optimization actions: the role set is already tight")
	}
	for i, a := range res.Plan.Actions {
		fmt.Fprintf(w, "%d. [class %d] %s", i+1, a.Class, a.Kind)
		switch a.Kind {
		case optimize.KindMergeRoles:
			fmt.Fprintf(w, ": keep %s, fold in %v (%s side)", a.Keep, a.Remove, a.Side)
		case optimize.KindMineRoleset:
			fmt.Fprintf(w, ": replace the role set with %d mined roles", len(a.MinedRoles))
		default:
			fmt.Fprintf(w, ": drop %s", a.Role)
		}
		fmt.Fprintf(w, " (-%d roles, %+d edges)\n", a.RolesRemoved, a.EdgesDelta)
		fmt.Fprintf(w, "   %s\n", a.Reason)
	}
	fmt.Fprintf(w, "roles %d -> %d, assignment edges %+d, %d merge rounds\n",
		res.Before.Roles, res.After.Roles, res.Plan.EdgesDelta(), res.Rounds)
	if res.MiningNote != "" {
		fmt.Fprintf(w, "mining: %s\n", res.MiningNote)
	}
	fmt.Fprintln(w, "reachability verified: optimized set grants exactly the input relation")
}

// decodePlan accepts either a bare plan ({"actions": [...]}) or a full
// optimize result and returns the plan.
func decodePlan(raw []byte) (*optimize.Plan, error) {
	var plan optimize.Plan
	if err := json.Unmarshal(raw, &plan); err != nil {
		return nil, err
	}
	if len(plan.Actions) > 0 {
		return &plan, nil
	}
	var res struct {
		Plan *optimize.Plan `json:"plan"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, err
	}
	if res.Plan != nil {
		return res.Plan, nil
	}
	return &plan, nil
}

// normalizePlan reads plan-shaped JSON (a bare plan, a full optimize
// result, or a paginated action page) and prints one canonical compact
// encoding, so smoke scripts can byte-compare plans from different
// surfaces.
func normalizePlan(path string, w io.Writer) error {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	plan, err := decodePlan(raw)
	if err != nil {
		return fmt.Errorf("optimize: parse %s: %w", path, err)
	}
	if len(plan.Actions) == 0 {
		// Paginated page shape: {"items": [...]}.
		var page struct {
			Items []optimize.Action `json:"items"`
		}
		if err := json.Unmarshal(raw, &page); err == nil && len(page.Items) > 0 {
			plan.Actions = page.Items
		}
	}
	out, err := json.Marshal(plan)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// writeDatasetFile writes ds to path when set, logging the write.
func writeDatasetFile(ds interface{ WriteJSON(io.Writer) error }, path string, stdout io.Writer) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote optimized dataset to %s\n", path)
	return nil
}
