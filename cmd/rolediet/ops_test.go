package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestQueryCommand(t *testing.T) {
	path := writeFigure1(t)
	// User + permission: the why trail.
	stdout, _, err := runCLI(t, "query", "-data", path, "-user", "U01", "-permission", "P05")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "holds P05") || !strings.Contains(stdout, "R04") {
		t.Fatalf("query output:\n%s", stdout)
	}
	// Negative case.
	stdout, _, err = runCLI(t, "query", "-data", path, "-user", "U03", "-permission", "P05")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "does NOT hold") {
		t.Fatalf("query output:\n%s", stdout)
	}
	// User only.
	stdout, _, err = runCLI(t, "query", "-data", path, "-user", "U01")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "effective permissions (2)") {
		t.Fatalf("query output:\n%s", stdout)
	}
	// Permission only.
	stdout, _, err = runCLI(t, "query", "-data", path, "-permission", "P05")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "granted by 2 roles") {
		t.Fatalf("query output:\n%s", stdout)
	}
	// Errors.
	if _, _, err := runCLI(t, "query", "-data", path); err == nil {
		t.Fatal("no selector accepted")
	}
	if _, _, err := runCLI(t, "query", "-user", "U01"); err == nil {
		t.Fatal("missing -data accepted")
	}
	if _, _, err := runCLI(t, "query", "-data", path, "-user", "ghost"); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestReconcileReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	before := writeFigure1(t)
	afterPath := filepath.Join(dir, "after.json")
	if _, _, err := runCLI(t, "consolidate", "-data", before, "-out", afterPath); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, "events.jsonl")
	stdout, _, err := runCLI(t, "reconcile", "-before", before, "-after", afterPath, "-out", logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "wrote") {
		t.Fatalf("reconcile output: %q", stdout)
	}

	resultPath := filepath.Join(dir, "result.json")
	stdout, _, err = runCLI(t, "replay",
		"-base", before, "-log", logPath, "-out", resultPath, "-audit-every", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "applied") || !strings.Contains(stdout, "checkpoint") {
		t.Fatalf("replay output:\n%s", stdout)
	}

	// The replayed dataset audits identically to the consolidated one.
	a, _, err := runCLI(t, "analyze", "-data", resultPath)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runCLI(t, "analyze", "-data", afterPath)
	if err != nil {
		t.Fatal(err)
	}
	if stripDurations(a) != stripDurations(b) {
		t.Fatalf("replayed audit differs:\n%s\nvs\n%s", a, b)
	}
}

// stripDurations removes the timing line, which legitimately differs.
func stripDurations(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "linear detectors:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func TestReconcileReplayValidation(t *testing.T) {
	path := writeFigure1(t)
	if _, _, err := runCLI(t, "reconcile", "-before", path); err == nil {
		t.Fatal("missing -after accepted")
	}
	if _, _, err := runCLI(t, "replay", "-base", path); err == nil {
		t.Fatal("missing -log accepted")
	}
	if _, _, err := runCLI(t, "replay", "-base", path, "-log", "/none.jsonl"); err == nil {
		t.Fatal("missing log file accepted")
	}
}

func TestReconcileToStdout(t *testing.T) {
	dir := t.TempDir()
	before := writeFigure1(t)
	afterPath := filepath.Join(dir, "after.json")
	if _, _, err := runCLI(t, "consolidate", "-data", before, "-out", afterPath); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := runCLI(t, "reconcile", "-before", before, "-after", afterPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, `"op"`) {
		t.Fatalf("stdout log missing events:\n%s", stdout)
	}
}

func TestAnalyzeWithHierarchy(t *testing.T) {
	dir := t.TempDir()
	path := writeFigure1(t)
	// Sidecar: R02 inherits R03 (gains P03, P04), plus a redundant
	// shortcut chain R02 -> R01 -> ... no, keep it simple: one edge.
	hier := filepath.Join(dir, "hier.json")
	if err := osWriteFile(hier, `{"inheritance":[{"senior":"R02","junior":"R03"}]}`); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := runCLI(t, "analyze", "-data", path, "-hierarchy", hier)
	if err != nil {
		t.Fatal(err)
	}
	// After flattening, R02 has permissions, so "roles without
	// permissions" drops to zero.
	found := false
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "2. roles without permissions") {
			fields := strings.Fields(line)
			if fields[len(fields)-1] == "0" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("flattened analyze output:\n%s", stdout)
	}
	// Errors.
	if _, _, err := runCLI(t, "analyze", "-data", path, "-hierarchy", "/none.json"); err == nil {
		t.Fatal("missing sidecar accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := osWriteFile(bad, `{"inheritance":[{"senior":"ghost","junior":"R03"}]}`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "analyze", "-data", path, "-hierarchy", bad); err == nil {
		t.Fatal("ghost senior accepted")
	}
}

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestBenchCommandQuick(t *testing.T) {
	stdout, _, err := runCLI(t, "bench", "-quick", "-runs", "1", "-org-scale", "500")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "# Evaluation report") ||
		!strings.Contains(stdout, "Organisation-scale audit") {
		t.Fatalf("bench output:\n%s", stdout)
	}
}

func TestRecallCommand(t *testing.T) {
	stdout, _, err := runCLI(t, "recall", "-roles", "150", "-users", "80")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "recall sweep") || !strings.Contains(stdout, "hnsw") {
		t.Fatalf("recall output:\n%s", stdout)
	}
	if _, _, err := runCLI(t, "recall", "-threshold", "-1"); err == nil {
		t.Fatal("negative threshold accepted")
	}
}
