package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestMineCommand(t *testing.T) {
	path := writeFigure1(t)
	out := filepath.Join(t.TempDir(), "mined.json")
	stdout, _, err := runCLI(t, "mine", "-data", path, "-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "mined") ||
		!strings.Contains(stdout, "effective permissions verified unchanged") {
		t.Fatalf("mine output:\n%s", stdout)
	}
	// Distinct-rows strategy and errors.
	if _, _, err := runCLI(t, "mine", "-data", path, "-strategy", "distinct-rows"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "mine", "-data", path, "-strategy", "magic"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, _, err := runCLI(t, "mine"); err == nil {
		t.Fatal("missing -data accepted")
	}
}

func TestSuggestCommand(t *testing.T) {
	path := writeFigure1(t)
	stdout, _, err := runCLI(t, "suggest", "-data", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "merge") {
		t.Fatalf("suggest output:\n%s", stdout)
	}
	stdout, _, err = runCLI(t, "suggest", "-data", path, "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, `"addedGrants"`) {
		t.Fatalf("suggest json:\n%s", stdout)
	}
	stdout, _, err = runCLI(t, "suggest", "-data", path, "-risk-free-only")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout, "+ ") {
		t.Fatalf("risk-free filter leaked risky suggestions:\n%s", stdout)
	}
	if _, _, err := runCLI(t, "suggest"); err == nil {
		t.Fatal("missing -data accepted")
	}
}

func TestAnalyzeLSHMethod(t *testing.T) {
	path := writeFigure1(t)
	stdout, _, err := runCLI(t, "analyze", "-data", path, "-method", "lsh")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "method=lsh") {
		t.Fatalf("lsh analyze output:\n%s", stdout)
	}
}

func TestDiffCommand(t *testing.T) {
	before := writeFigure1(t)
	afterPath := filepath.Join(t.TempDir(), "after.json")
	if _, _, err := runCLI(t, "consolidate", "-data", before, "-out", afterPath); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := runCLI(t, "diff", "-before", before, "-after", afterPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "structural changes") ||
		!strings.Contains(stdout, "improved") {
		t.Fatalf("diff output:\n%s", stdout)
	}
	if _, _, err := runCLI(t, "diff", "-before", before); err == nil {
		t.Fatal("missing -after accepted")
	}
	if _, _, err := runCLI(t, "diff", "-before", "/none.json", "-after", before); err == nil {
		t.Fatal("missing before file accepted")
	}
}

func TestHelpListsNewSubcommands(t *testing.T) {
	out, _, err := runCLI(t, "help")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mine") || !strings.Contains(out, "suggest") {
		t.Fatalf("help missing new subcommands:\n%s", out)
	}
}

func TestDigestCommand(t *testing.T) {
	path := writeFigure1(t)
	stdout, _, err := runCLI(t, "digest", "-data", path)
	if err != nil {
		t.Fatal(err)
	}
	bare := strings.TrimSpace(stdout)
	if len(bare) != 64 {
		t.Fatalf("digest = %q, want 64 hex chars", bare)
	}
	// Deterministic: the same file digests identically, and the
	// prefixed form only adds the algorithm tag.
	again, _, err := runCLI(t, "digest", "-data", path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(again) != bare {
		t.Fatalf("digest not deterministic: %q vs %q", again, stdout)
	}
	prefixed, _, err := runCLI(t, "digest", "-data", path, "-prefixed")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(prefixed) != "sha256:"+bare {
		t.Fatalf("prefixed digest = %q", prefixed)
	}
	jsonOut, _, err := runCLI(t, "digest", "-data", path, "-json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut, bare) || !strings.Contains(jsonOut, `"roles"`) {
		t.Fatalf("digest json:\n%s", jsonOut)
	}
	if _, _, err := runCLI(t, "digest"); err == nil {
		t.Fatal("missing -data accepted")
	}
}
