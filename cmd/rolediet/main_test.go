package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rbac"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestNoArgs(t *testing.T) {
	_, stderr, err := runCLI(t)
	if err == nil {
		t.Fatal("no args accepted")
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("usage not printed: %q", stderr)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	if _, _, err := runCLI(t, "frobnicate"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestHelp(t *testing.T) {
	out, _, err := runCLI(t, "help")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"generate", "analyze", "consolidate", "sweep", "org"} {
		if !strings.Contains(out, want) {
			t.Fatalf("help missing %q:\n%s", want, out)
		}
	}
}

func writeFigure1(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig1.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rbac.Figure1().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGenerateMatrixAndAnalyze(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.json")
	stdout, _, err := runCLI(t, "generate", "-out", out, "-roles", "60", "-users", "40", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "60 roles") {
		t.Fatalf("generate output: %q", stdout)
	}
	stdout, _, err = runCLI(t, "analyze", "-data", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "roles sharing the same users") {
		t.Fatalf("analyze output:\n%s", stdout)
	}
}

func TestGenerateOrg(t *testing.T) {
	out := filepath.Join(t.TempDir(), "org.json")
	stdout, _, err := runCLI(t, "generate", "-org", "-scale", "200", "-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "wrote") {
		t.Fatalf("generate output: %q", stdout)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeFormats(t *testing.T) {
	path := writeFigure1(t)
	stdout, _, err := runCLI(t, "analyze", "-data", path, "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, `"sameUserGroups"`) {
		t.Fatalf("json output:\n%s", stdout)
	}
	if _, _, err := runCLI(t, "analyze", "-data", path, "-format", "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, _, err := runCLI(t, "analyze"); err == nil {
		t.Fatal("missing -data accepted")
	}
	if _, _, err := runCLI(t, "analyze", "-data", "/nonexistent.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, _, err := runCLI(t, "analyze", "-data", path, "-method", "kmeans"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestAnalyzeSparseFlag(t *testing.T) {
	path := writeFigure1(t)
	stdout, _, err := runCLI(t, "analyze", "-data", path, "-sparse")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "method=rolediet") {
		t.Fatalf("sparse analyze output:\n%s", stdout)
	}
	if _, _, err := runCLI(t, "analyze", "-data", path, "-sparse", "-method", "dbscan"); err == nil {
		t.Fatal("sparse+dbscan accepted")
	}
}

func TestAnalyzeAllMethods(t *testing.T) {
	path := writeFigure1(t)
	for _, m := range []string{"rolediet", "dbscan", "hnsw"} {
		stdout, _, err := runCLI(t, "analyze", "-data", path, "-method", m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !strings.Contains(stdout, "method="+m) {
			t.Fatalf("%s output:\n%s", m, stdout)
		}
	}
}

func TestConsolidateCommand(t *testing.T) {
	path := writeFigure1(t)
	out := filepath.Join(t.TempDir(), "after.json")
	stdout, _, err := runCLI(t, "consolidate", "-data", path, "-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "safety verified") {
		t.Fatalf("consolidate output: %q", stdout)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	after, err := rbac.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if after.NumRoles() != 4 {
		t.Fatalf("consolidated roles = %d, want 4", after.NumRoles())
	}
	if _, _, err := runCLI(t, "consolidate"); err == nil {
		t.Fatal("missing -data accepted")
	}
}

func TestSweepCommand(t *testing.T) {
	stdout, stderr, err := runCLI(t, "sweep",
		"-axis", "roles", "-fixed", "50", "-values", "30,60",
		"-runs", "1", "-methods", "rolediet,dbscan")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "rolediet") || !strings.Contains(stdout, "dbscan") {
		t.Fatalf("sweep table:\n%s", stdout)
	}
	if !strings.Contains(stderr, "method=rolediet") {
		t.Fatalf("sweep progress:\n%s", stderr)
	}
	// CSV mode.
	stdout, _, err = runCLI(t, "sweep",
		"-axis", "users", "-fixed", "40", "-values", "30",
		"-runs", "1", "-methods", "rolediet", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout, "users,rolediet_mean_s") {
		t.Fatalf("sweep csv:\n%s", stdout)
	}
	// Errors.
	if _, _, err := runCLI(t, "sweep", "-axis", "zz"); err == nil {
		t.Fatal("bad axis accepted")
	}
	if _, _, err := runCLI(t, "sweep", "-values", "a,b"); err == nil {
		t.Fatal("bad values accepted")
	}
	if _, _, err := runCLI(t, "sweep", "-methods", "kmeans"); err == nil {
		t.Fatal("bad method accepted")
	}
}

func TestOrgCommand(t *testing.T) {
	stdout, _, err := runCLI(t, "org", "-scale", "100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "organisation-scale audit") ||
		strings.Contains(stdout, "MISMATCH") {
		t.Fatalf("org output:\n%s", stdout)
	}
}

func TestAnalyzeWorkersFlag(t *testing.T) {
	path := writeFigure1(t)
	serial, _, err := runCLI(t, "analyze", "-data", path, "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := runCLI(t, "analyze", "-data", path, "-workers", "4", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	stripTimings := func(raw string) map[string]any {
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatal(err)
		}
		for k := range m {
			if strings.Contains(k, "Duration") {
				delete(m, k)
			}
		}
		return m
	}
	if a, b := stripTimings(serial), stripTimings(par); !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel report differs from serial:\n%v\n---\n%v", a, b)
	}
	if _, _, err := runCLI(t, "analyze", "-data", path, "-workers", "-1"); err == nil {
		t.Fatal("negative -workers accepted")
	}
	// The -options JSON shares the server schema and wins over the flag,
	// so a negative value there must be rejected by the decoder too.
	if _, _, err := runCLI(t, "analyze", "-data", path, "-options", `{"workers": -2}`); err == nil {
		t.Fatal("negative workers in -options accepted")
	}
	if _, _, err := runCLI(t, "consolidate", "-data", path, "-workers", "-1"); err == nil {
		t.Fatal("consolidate negative -workers accepted")
	}
}
