package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"
)

// cmdWebhook runs a tiny webhook receiver: every POST body arrives as
// one JSONL line on -out (stdout by default). It is the counterpart of
// roledietd's alert sinks for smoke tests and local experiments —
// point a sink at it and watch the alerts land. With -count N it exits
// successfully after N deliveries; -timeout bounds the wait either way.
func cmdWebhook(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("webhook", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address; port 0 picks a free port")
	out := fs.String("out", "", "file receiving one JSONL line per delivery; empty writes to stdout")
	count := fs.Int("count", 0, "exit successfully after this many deliveries; 0 runs until -timeout or interrupt")
	timeout := fs.Duration("timeout", time.Minute, "maximum time to serve; 0 serves forever")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sink := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("webhook: %w", err)
		}
		defer f.Close()
		sink = f
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("webhook: %w", err)
	}
	// The chosen address goes to stderr so scripts can scrape it while
	// the JSONL stream stays clean on -out/stdout.
	fmt.Fprintf(stderr, "webhook listening on http://%s\n", ln.Addr())

	var (
		mu   sync.Mutex
		seen int
		done = make(chan struct{})
		once sync.Once
	)
	srv := &http.Server{
		ReadHeaderTimeout: 10 * time.Second,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			mu.Lock()
			fmt.Fprintf(sink, "%s\n", body)
			if f, ok := sink.(*os.File); ok {
				f.Sync() // a killed smoke run must not lose the line
			}
			seen++
			reached := *count > 0 && seen >= *count
			mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
			if reached {
				once.Do(func() { close(done) })
			}
		}),
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	var timer <-chan time.Time
	if *timeout > 0 {
		t := time.NewTimer(*timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-done:
	case <-timer:
		mu.Lock()
		n := seen
		mu.Unlock()
		if *count > 0 && n < *count {
			srv.Close()
			return fmt.Errorf("webhook: timed out with %d/%d deliveries", n, *count)
		}
	case err := <-errCh:
		return fmt.Errorf("webhook: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	return nil
}
