package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/rbac"
	"repro/internal/replay"
)

// cmdBench runs the complete evaluation (both sweeps + the org audit)
// and emits a Markdown report.
func cmdBench(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		quick = fs.Bool("quick", false, "miniature sizes (seconds instead of minutes)")
		runs  = fs.Int("runs", 0, "override repetitions per measurement")
		scale = fs.Int("org-scale", 0, "override the org-audit scale divisor")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.FullReportConfig()
	if *quick {
		cfg = bench.QuickReportConfig()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *scale > 0 {
		cfg.OrgScale = *scale
	}
	cfg.Progress = func(line string) { fmt.Fprintln(stderr, line) }
	md, err := bench.FullReport(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, md)
	return nil
}

// cmdRecall runs the approximate-method quality sweep: recall and
// duration for HNSW (across efSearch) and LSH (across table counts).
func cmdRecall(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("recall", flag.ContinueOnError)
	var (
		roles     = fs.Int("roles", 4000, "matrix rows")
		users     = fs.Int("users", 1000, "matrix columns")
		threshold = fs.Int("threshold", 0, "group threshold")
		seed      = fs.Int64("seed", 1, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunRecall(bench.RecallConfig{
		Rows:      *roles,
		Cols:      *users,
		Threshold: *threshold,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.Table())
	return nil
}

// cmdQuery answers access-review questions against a dataset.
func cmdQuery(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	var (
		data = fs.String("data", "", "dataset JSON path (required)")
		user = fs.String("user", "", "user id to inspect")
		perm = fs.String("permission", "", "permission id to inspect")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("query: -data is required")
	}
	if *user == "" && *perm == "" {
		return fmt.Errorf("query: need -user and/or -permission")
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	x := query.NewIndex(ds)

	switch {
	case *user != "" && *perm != "":
		grants, err := x.Why(rbac.UserID(*user), rbac.PermissionID(*perm))
		if err != nil {
			return err
		}
		if len(grants) == 0 {
			fmt.Fprintf(stdout, "%s does NOT hold %s\n", *user, *perm)
			return nil
		}
		fmt.Fprintf(stdout, "%s holds %s via %d role(s):\n", *user, *perm, len(grants))
		for _, g := range grants {
			fmt.Fprintf(stdout, "  %s\n", g.Via)
		}
	case *user != "":
		roles, err := x.RolesOf(rbac.UserID(*user))
		if err != nil {
			return err
		}
		perms, err := x.PermissionsOf(rbac.UserID(*user))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "user %s: %d roles %v\n", *user, len(roles), roles)
		fmt.Fprintf(stdout, "effective permissions (%d): %v\n", len(perms), perms)
	default:
		roles, err := x.RolesGranting(rbac.PermissionID(*perm))
		if err != nil {
			return err
		}
		users, err := x.UsersWith(rbac.PermissionID(*perm))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "permission %s: granted by %d roles %v\n", *perm, len(roles), roles)
		fmt.Fprintf(stdout, "held by %d users: %v\n", len(users), users)
	}
	return nil
}

// cmdReconcile computes the event log transforming one snapshot into
// another.
func cmdReconcile(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("reconcile", flag.ContinueOnError)
	var (
		before = fs.String("before", "", "earlier dataset JSON path (required)")
		after  = fs.String("after", "", "later dataset JSON path (required)")
		out    = fs.String("out", "", "write the JSONL event log here (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *before == "" || *after == "" {
		return fmt.Errorf("reconcile: -before and -after are required")
	}
	dsBefore, err := loadDataset(*before)
	if err != nil {
		return err
	}
	dsAfter, err := loadDataset(*after)
	if err != nil {
		return err
	}
	events := replay.Reconcile(dsBefore, dsAfter)
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := replay.WriteLog(w, events); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %d events to %s\n", len(events), *out)
	}
	return nil
}

// cmdReplay applies an event log to a base snapshot, optionally
// auditing at checkpoints.
func cmdReplay(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		base       = fs.String("base", "", "base dataset JSON path (required)")
		logPath    = fs.String("log", "", "JSONL event log path (required)")
		out        = fs.String("out", "", "write the resulting dataset here (optional)")
		checkEvery = fs.Int("audit-every", 0, "run the detection framework every N events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *base == "" || *logPath == "" {
		return fmt.Errorf("replay: -base and -log are required")
	}
	ds, err := loadDataset(*base)
	if err != nil {
		return err
	}
	f, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := replay.ReadLog(f)
	if err != nil {
		return err
	}

	r := &replay.Replayer{Dataset: ds}
	if *checkEvery > 0 {
		r.CheckpointEvery = *checkEvery
		r.Checkpoint = func(applied int, d *rbac.Dataset) bool {
			rep, err := core.Analyze(d, core.Options{SkipSimilar: true})
			if err != nil {
				fmt.Fprintf(stdout, "checkpoint %d: audit failed: %v\n", applied, err)
				return false
			}
			fmt.Fprintf(stdout, "checkpoint after %d events: %d roles, %d same-user groups, %d same-permission groups\n",
				applied, rep.Stats.Roles,
				len(rep.SameUserGroups), len(rep.SamePermissionGroups))
			return true
		}
	}
	applied, err := r.Run(events)
	if err != nil {
		return fmt.Errorf("replay: applied %d: %w", applied, err)
	}
	fmt.Fprintf(stdout, "applied %d events; final: %+v\n", applied, ds.Stats())
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer g.Close()
		if err := ds.WriteJSON(g); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote result to %s\n", *out)
	}
	return nil
}
