package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/diff"
)

// cmdDiff compares two dataset snapshots: structural changes plus the
// movement of every inefficiency counter between the two audits.
func cmdDiff(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	var (
		before    = fs.String("before", "", "earlier dataset JSON path (required)")
		after     = fs.String("after", "", "later dataset JSON path (required)")
		threshold = fs.Int("threshold", 1, "similar-group threshold k")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *before == "" || *after == "" {
		return fmt.Errorf("diff: -before and -after are required")
	}
	dsBefore, err := loadDataset(*before)
	if err != nil {
		return err
	}
	dsAfter, err := loadDataset(*after)
	if err != nil {
		return err
	}

	sd := diff.Datasets(dsBefore, dsAfter)
	if sd.Empty() {
		fmt.Fprintln(stdout, "no structural changes")
	} else {
		fmt.Fprintf(stdout, "structural changes: +%d/-%d users, +%d/-%d roles, +%d/-%d permissions, "+
			"+%d/-%d user edges, +%d/-%d permission edges\n",
			len(sd.AddedUsers), len(sd.RemovedUsers),
			len(sd.AddedRoles), len(sd.RemovedRoles),
			len(sd.AddedPermissions), len(sd.RemovedPermissions),
			len(sd.AddedUserEdges), len(sd.RemovedUserEdges),
			len(sd.AddedPermEdges), len(sd.RemovedPermEdges))
	}

	opts := core.Options{SimilarThreshold: *threshold}
	repBefore, err := core.Analyze(dsBefore, opts)
	if err != nil {
		return err
	}
	repAfter, err := core.Analyze(dsAfter, opts)
	if err != nil {
		return err
	}
	rd := diff.Reports(repBefore, repAfter)
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, rd.Summary())
	if rd.Improved() {
		fmt.Fprintln(stdout, "\noverall: improved (no counter regressed)")
	}
	return nil
}
