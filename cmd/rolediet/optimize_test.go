package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOptimizeCommand(t *testing.T) {
	path := writeFigure1(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "optimized.json")
	planPath := filepath.Join(dir, "plan.json")

	stdout, _, err := runCLI(t, "optimize", "-data", path, "-out", out, "-plan", planPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "roles 5 ->") ||
		!strings.Contains(stdout, "reachability verified") {
		t.Fatalf("optimize output:\n%s", stdout)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("optimized dataset not written: %v", err)
	}

	// The saved plan replays against the same input and reports the
	// same final role count.
	applied, _, err := runCLI(t, "optimize", "-data", path, "-apply", planPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(applied, "replayed") {
		t.Fatalf("apply output:\n%s", applied)
	}

	// JSON mode emits the full result.
	jsonOut, _, err := runCLI(t, "optimize", "-data", path, "-format", "json", "-mine")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Plan struct {
			Actions []json.RawMessage `json:"actions"`
		} `json:"plan"`
		Optimized json.RawMessage `json:"optimized"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &res); err != nil {
		t.Fatalf("optimize -format json: %v\n%s", err, jsonOut)
	}
	if len(res.Plan.Actions) == 0 || len(res.Optimized) == 0 {
		t.Fatalf("json result incomplete:\n%s", jsonOut)
	}

	if _, _, err := runCLI(t, "optimize"); err == nil {
		t.Fatal("missing -data accepted")
	}
}

func TestOptimizeNormalize(t *testing.T) {
	path := writeFigure1(t)
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	if _, _, err := runCLI(t, "optimize", "-data", path, "-plan", planPath); err != nil {
		t.Fatal(err)
	}

	// The indented plan file and the full JSON result normalise to the
	// same canonical bytes.
	fromPlan, _, err := runCLI(t, "optimize", "-normalize", planPath)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := runCLI(t, "optimize", "-data", path, "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	resPath := filepath.Join(dir, "result.json")
	if err := os.WriteFile(resPath, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	fromResult, _, err := runCLI(t, "optimize", "-normalize", resPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromPlan != fromResult {
		t.Fatalf("normalized forms differ:\n%s\nvs\n%s", fromPlan, fromResult)
	}
	if !strings.Contains(fromPlan, `"actions"`) {
		t.Fatalf("normalized plan:\n%s", fromPlan)
	}
}
