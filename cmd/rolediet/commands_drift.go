package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/rbac"
	"repro/internal/replay"
	"repro/internal/session"
	"repro/internal/store"
)

// cmdDrift is the CLI face of the O(delta) audit path, sharing the
// session.DriftReport schema with POST /v1/drift. Three modes:
//
//	rolediet drift -before a.json -after b.json
//	    local drift audit: reconcile the snapshots, replay the delta
//	    through an incremental session, print the DriftReport JSON
//	rolediet drift -normalize report.json
//	    canonicalise the duplicate-group view of any audit-shaped JSON
//	    (session audit, /v1/analyze report, or DriftReport) so two
//	    sources of the same groups compare byte-for-byte
//	rolediet drift -gen-base base.json -gen-events 3 -out events.jsonl
//	    generate a replayable synthetic churn log against a base
//	    snapshot (the smoke tests feed this to /v1/sessions)
func cmdDrift(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("drift", flag.ContinueOnError)
	var (
		before    = fs.String("before", "", "earlier dataset JSON path")
		after     = fs.String("after", "", "later dataset JSON path")
		normalize = fs.String("normalize", "", `audit-shaped JSON to canonicalise ("-" for stdin)`)
		genBase   = fs.String("gen-base", "", "base dataset for synthetic churn generation")
		genEvents = fs.Int("gen-events", 3, "churn events to generate with -gen-base")
		seed      = fs.Int64("seed", 1, "churn generator seed")
		out       = fs.String("out", "", "output path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch {
	case *normalize != "":
		return normalizeGroups(*normalize, w)
	case *genBase != "":
		ds, err := loadDataset(*genBase)
		if err != nil {
			return err
		}
		events, err := gen.Drift(ds, gen.DriftParams{Events: *genEvents, Seed: *seed})
		if err != nil {
			return err
		}
		return replay.WriteLog(w, events)
	case *before != "" && *after != "":
		dsBefore, err := loadDataset(*before)
		if err != nil {
			return err
		}
		dsAfter, err := loadDataset(*after)
		if err != nil {
			return err
		}
		beforeRef, _, err := store.DigestOf(dsBefore)
		if err != nil {
			return err
		}
		afterRef, _, err := store.DigestOf(dsAfter)
		if err != nil {
			return err
		}
		report, err := session.Drift(beforeRef, afterRef, dsBefore, dsAfter)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		return enc.Encode(report)
	default:
		return fmt.Errorf("drift: need -before/-after, -normalize, or -gen-base")
	}
}

// normalizedGroups is the canonical byte-comparable form: both group
// lists sorted members-lexically and groups-by-first-member.
type normalizedGroups struct {
	SameUserGroups       [][]rbac.RoleID `json:"sameUserGroups"`
	SamePermissionGroups [][]rbac.RoleID `json:"samePermissionGroups"`
}

// auditShapes covers the three producers of duplicate-group JSON: the
// session audit and DriftReport carry bare string arrays; the engine
// report wraps each group in {"roles": [...]}.
type auditShape struct {
	SameUserGroups       json.RawMessage `json:"sameUserGroups"`
	SamePermissionGroups json.RawMessage `json:"samePermissionGroups"`
	SameUser             *struct {
		Groups json.RawMessage `json:"groups"`
	} `json:"sameUser"`
	SamePermission *struct {
		Groups json.RawMessage `json:"groups"`
	} `json:"samePermission"`
}

// normalizeGroups reads one audit-shaped document and prints its
// canonical normalizedGroups encoding.
func normalizeGroups(path string, w io.Writer) error {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	var shape auditShape
	if err := json.Unmarshal(raw, &shape); err != nil {
		return fmt.Errorf("drift: parse %s: %w", path, err)
	}
	userRaw, permRaw := shape.SameUserGroups, shape.SamePermissionGroups
	if shape.SameUser != nil {
		userRaw = shape.SameUser.Groups
	}
	if shape.SamePermission != nil {
		permRaw = shape.SamePermission.Groups
	}
	norm := normalizedGroups{}
	if norm.SameUserGroups, err = decodeGroups(userRaw); err != nil {
		return fmt.Errorf("drift: sameUserGroups: %w", err)
	}
	if norm.SamePermissionGroups, err = decodeGroups(permRaw); err != nil {
		return fmt.Errorf("drift: samePermissionGroups: %w", err)
	}
	session.SortGroups(norm.SameUserGroups)
	session.SortGroups(norm.SamePermissionGroups)
	return json.NewEncoder(w).Encode(norm)
}

// decodeGroups accepts [["r1","r2"],...] or [{"roles":["r1","r2"]},...].
func decodeGroups(raw json.RawMessage) ([][]rbac.RoleID, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return [][]rbac.RoleID{}, nil
	}
	var bare [][]rbac.RoleID
	if err := json.Unmarshal(raw, &bare); err == nil {
		if bare == nil {
			bare = [][]rbac.RoleID{}
		}
		return bare, nil
	}
	var wrapped []struct {
		Roles []rbac.RoleID `json:"roles"`
	}
	if err := json.Unmarshal(raw, &wrapped); err != nil {
		return nil, fmt.Errorf("neither [][]string nor [{roles}] shaped: %w", err)
	}
	out := make([][]rbac.RoleID, 0, len(wrapped))
	for _, g := range wrapped {
		out = append(out, g.Roles)
	}
	return out, nil
}
