package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/mining"
	"repro/internal/store"
)

// cmdDigest prints a dataset's content digest — the same SHA-256 over
// the canonical encoding that roledietd's /v1/datasets registry
// assigns, so a digest computed offline can be used as dataset_ref
// against a server that has the snapshot.
func cmdDigest(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("digest", flag.ContinueOnError)
	var (
		data     = fs.String("data", "", "dataset JSON path (required)")
		jsonOut  = fs.Bool("json", false, "emit JSON ({digest, bytes, roles, users, permissions})")
		prefixed = fs.Bool("prefixed", false, "print with the sha256: prefix")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("digest: -data is required")
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	digest, canonical, err := store.DigestOf(ds)
	if err != nil {
		return err
	}
	if *prefixed {
		digest = "sha256:" + digest
	}
	if *jsonOut {
		st := ds.Stats()
		enc := json.NewEncoder(stdout)
		return enc.Encode(map[string]any{
			"digest":      digest,
			"bytes":       len(canonical),
			"roles":       st.Roles,
			"users":       st.Users,
			"permissions": st.Permissions,
		})
	}
	fmt.Fprintln(stdout, digest)
	return nil
}

// cmdMine rebuilds a role set bottom-up from the dataset's effective
// user-permission assignment — the role-mining comparison from the
// paper's related-work discussion.
func cmdMine(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mine", flag.ContinueOnError)
	var (
		data     = fs.String("data", "", "dataset JSON path (required)")
		out      = fs.String("out", "", "write the mined dataset to this path (optional)")
		strategy = fs.String("strategy", "pairwise-intersections",
			"candidate strategy: distinct-rows or pairwise-intersections")
		maxCand = fs.Int("max-candidates", 0, "cap the candidate pool (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("mine: -data is required")
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	var strat mining.CandidateStrategy
	switch *strategy {
	case "distinct-rows":
		strat = mining.DistinctRows
	case "pairwise-intersections":
		strat = mining.PairwiseIntersections
	default:
		return fmt.Errorf("mine: unknown strategy %q", *strategy)
	}

	upa := mining.UPAFromDataset(ds)
	res, err := mining.Mine(upa, mining.Options{Strategy: strat, MaxCandidates: *maxCand})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "mined %d roles from %d existing roles (%d candidates, strategy %s)\n",
		res.NumRoles(), ds.NumRoles(), res.CandidateCount, strat)

	mined, err := mining.ToDataset(ds, res)
	if err != nil {
		return err
	}
	if err := consolidate.VerifySafety(ds, mined); err != nil {
		return fmt.Errorf("mine: mined decomposition changed effective permissions: %w", err)
	}
	fmt.Fprintln(stdout, "effective permissions verified unchanged")
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := mined.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote mined dataset to %s\n", *out)
	}
	return nil
}

// cmdSuggest emits reviewable merge suggestions for similar-role
// groups, with the exact grant delta per suggestion — the consolidation
// approach the paper lists as future work.
func cmdSuggest(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("suggest", flag.ContinueOnError)
	var (
		data      = fs.String("data", "", "dataset JSON path (required)")
		threshold = fs.Int("threshold", 1, "similar-group threshold k")
		format    = fs.String("format", "text", "output format: text or json")
		riskFree  = fs.Bool("risk-free-only", false, "only print suggestions with no added grants")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("suggest: -data is required")
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	rep, err := core.Analyze(ds, core.Options{SimilarThreshold: *threshold})
	if err != nil {
		return err
	}
	suggestions, err := consolidate.SuggestSimilar(ds, rep)
	if err != nil {
		return err
	}
	if *riskFree {
		kept := suggestions[:0]
		for _, s := range suggestions {
			if s.RiskFree() {
				kept = append(kept, s)
			}
		}
		suggestions = kept
	}
	if *format == "json" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(suggestions)
	}
	if len(suggestions) == 0 {
		fmt.Fprintln(stdout, "no merge suggestions")
		return nil
	}
	for i, s := range suggestions {
		fmt.Fprintf(stdout, "%d. merge %v (similar %s): ", i+1, s.Roles, s.Side)
		if s.RiskFree() {
			fmt.Fprintln(stdout, "risk-free (no new grants)")
			continue
		}
		fmt.Fprintf(stdout, "%d new grants\n", len(s.AddedGrants))
		for _, g := range s.AddedGrants {
			fmt.Fprintf(stdout, "     + %s -> %s\n", g.User, g.Permission)
		}
	}
	return nil
}
