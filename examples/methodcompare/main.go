// Methodcompare runs the three group-finding methods of §III-C on one
// synthetic matrix and compares their running time and recall — a
// single-point version of the paper's Figure 2/3 sweeps.
//
// Run with:
//
//	go run ./examples/methodcompare -roles 2000 -users 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	var (
		roles = flag.Int("roles", 2000, "number of roles (matrix rows)")
		users = flag.Int("users", 1000, "number of users (matrix columns)")
		k     = flag.Int("threshold", 0, "group threshold (0 = identical rows)")
	)
	flag.Parse()
	if err := run(*roles, *users, *k); err != nil {
		log.Fatal(err)
	}
}

func run(roles, users, k int) error {
	// The paper's generator settings: 20% of roles sit in clusters of
	// up to 10 identical rows.
	g, err := gen.Matrix(gen.MatrixParams{
		Rows:              roles,
		Cols:              users,
		ClusterProportion: 0.2,
		MaxClusterSize:    10,
		Seed:              42,
	})
	if err != nil {
		return err
	}
	planted := 0
	for _, grp := range g.Planted {
		planted += len(grp)
	}
	fmt.Printf("matrix: %d roles x %d users, %d roles planted in %d identical clusters\n\n",
		roles, users, planted, len(g.Planted))
	fmt.Printf("%-10s %14s %8s %8s %8s\n", "method", "duration", "groups", "roles", "recall")

	methods := []core.Method{
		core.MethodRoleDiet, core.MethodDBSCAN, core.MethodHNSW, core.MethodLSH,
	}
	for _, m := range methods {
		start := time.Now()
		groups, err := core.FindRoleGroups(g.Rows, core.GroupOptions{Method: m, Threshold: k})
		if err != nil {
			return err
		}
		dur := time.Since(start)
		found := 0
		for _, grp := range groups {
			found += len(grp)
		}
		recall := 1.0
		if planted > 0 {
			recall = float64(found) / float64(planted)
		}
		fmt.Printf("%-10s %14s %8d %8d %7.1f%%\n",
			m, dur.Round(time.Microsecond), len(groups), found, 100*recall)
	}

	fmt.Println("\nexpected shape (paper §IV-A): rolediet fastest and exact; dbscan exact but")
	fmt.Println("quadratic in roles; hnsw pays an index-build constant and may trade recall")
	fmt.Println("for speed, catching up to dbscan as the role count grows; lsh (extension)")
	fmt.Println("is exact at threshold 0 and probabilistic above")
	return nil
}
