// Consolidation demonstrates the role-diet cleanup loop on a small
// department-style dataset: detect class-4 groups, plan merges, apply
// them, verify that no user gained or lost a single effective
// permission, and iterate until no further safe merge exists.
//
// Run with:
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/rbac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildDepartments creates two "departments" that independently defined
// equivalent roles — the fragmentation the paper blames for role bloat
// in global enterprises.
func buildDepartments() *rbac.Dataset {
	d := rbac.NewDataset()
	users := []rbac.UserID{"alice", "bob", "carol", "dave", "erin", "frank"}
	for _, u := range users {
		if err := d.AddUser(u); err != nil {
			panic(err)
		}
	}
	perms := []rbac.PermissionID{
		"db.read", "db.write", "repo.read", "repo.write", "deploy.stage", "deploy.prod",
	}
	for _, p := range perms {
		if err := d.AddPermission(p); err != nil {
			panic(err)
		}
	}

	type roleSpec struct {
		id    rbac.RoleID
		users []rbac.UserID
		perms []rbac.PermissionID
	}
	specs := []roleSpec{
		// Department A.
		{"a-developer", []rbac.UserID{"alice", "bob"}, []rbac.PermissionID{"repo.read", "repo.write"}},
		{"a-dba", []rbac.UserID{"carol"}, []rbac.PermissionID{"db.read", "db.write"}},
		// Department B re-created the same developer role under its own
		// name, with the same permissions, for its own people...
		{"b-developer", []rbac.UserID{"dave", "erin"}, []rbac.PermissionID{"repo.read", "repo.write"}},
		// ...and a duplicate of A's developer role for the same people
		// (identical user set!), plus a deployment role.
		{"a-developer-legacy", []rbac.UserID{"alice", "bob"}, []rbac.PermissionID{"repo.read"}},
		{"b-deployer", []rbac.UserID{"frank"}, []rbac.PermissionID{"deploy.stage", "deploy.prod"}},
	}
	for _, s := range specs {
		if err := d.AddRole(s.id); err != nil {
			panic(err)
		}
		for _, u := range s.users {
			if err := d.AssignUser(s.id, u); err != nil {
				panic(err)
			}
		}
		for _, p := range s.perms {
			if err := d.AssignPermission(s.id, p); err != nil {
				panic(err)
			}
		}
	}
	return d
}

func run() error {
	ds := buildDepartments()
	fmt.Printf("before: %d roles\n", ds.NumRoles())

	round := 0
	for {
		round++
		after, plan, err := consolidate.Consolidate(ds, core.Options{})
		if err != nil {
			return err
		}
		if plan.RolesRemoved() == 0 {
			fmt.Printf("round %d: no safe merges remain\n", round)
			break
		}
		for _, m := range plan.Merges {
			fmt.Printf("round %d: merge %v into %s (identical %s)\n",
				round, m.Remove, m.Keep, m.Side)
		}
		// VerifySafety already ran inside Consolidate; run it again here
		// to show the API.
		if err := consolidate.VerifySafety(ds, after); err != nil {
			return fmt.Errorf("safety violated: %w", err)
		}
		ds = after
	}

	fmt.Printf("after: %d roles\n", ds.NumRoles())
	fmt.Println("\nremaining roles and their assignments:")
	for _, r := range ds.Roles() {
		users, err := ds.RoleUsers(r)
		if err != nil {
			return err
		}
		perms, err := ds.RolePermissions(r)
		if err != nil {
			return err
		}
		fmt.Printf("  %-22s users=%v perms=%v\n", r, users, perms)
	}
	return nil
}
