// Quickstart: build the paper's Figure 1 dataset, run the full
// detection framework, and print the inefficiency report.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rbac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The running example from the paper: 4 users, 5 roles, 6
	// permissions, with one instance of every inefficiency class.
	ds := rbac.Figure1()

	// Analyze with the defaults: Role Diet method, similar threshold 1
	// ("all but one user/permission").
	rep, err := core.Analyze(ds, core.Options{})
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())

	// Individual findings are structured, not just printable.
	fmt.Println("\ndetails:")
	for _, g := range rep.SameUserGroups {
		fmt.Printf("  roles with identical user sets: %v\n", g.Roles)
	}
	for _, g := range rep.SamePermissionGroups {
		fmt.Printf("  roles with identical permission sets: %v\n", g.Roles)
	}
	for _, r := range rep.RolesWithSingleUser {
		users, err := ds.RoleUsers(r)
		if err != nil {
			return err
		}
		fmt.Printf("  role %s has a single user: %v (may be legitimate — review, don't auto-fix)\n",
			r, users)
	}
	return nil
}
