// Incrementalwatch demonstrates keeping the duplicate-role index (the
// class-4 inefficiency) current under live assignment churn, instead of
// re-running the batch framework periodically: every mutation is an
// O(1) hash update, and group queries read straight off the index.
//
// The simulation replays a day of IAM events — role creation,
// assignment, revocation — against a department that keeps cloning its
// "viewer" role, and prints the duplicate groups as they form and
// dissolve.
//
// Run with:
//
//	go run ./examples/incrementalwatch
package main

import (
	"fmt"
	"log"

	"repro/internal/incremental"
)

// event is one IAM mutation.
type event struct {
	desc string
	do   func(x *incremental.Index) error
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Roles are ints here; a deployment would map its role ids.
	const (
		viewer      = 0
		viewerClone = 1
		editor      = 2
		viewerV2    = 3
	)
	users := map[string]int{"alice": 100, "bob": 101, "carol": 102}

	x := incremental.New(2025)
	events := []event{
		{"create role viewer", func(x *incremental.Index) error { return x.AddRole(viewer) }},
		{"assign alice to viewer", func(x *incremental.Index) error { return x.Assign(viewer, users["alice"]) }},
		{"assign bob to viewer", func(x *incremental.Index) error { return x.Assign(viewer, users["bob"]) }},
		{"create role editor", func(x *incremental.Index) error { return x.AddRole(editor) }},
		{"assign carol to editor", func(x *incremental.Index) error { return x.Assign(editor, users["carol"]) }},
		// A second team recreates viewer under a new name for the same
		// people: a class-4 inefficiency is born.
		{"create role viewer-clone", func(x *incremental.Index) error { return x.AddRole(viewerClone) }},
		{"assign alice to viewer-clone", func(x *incremental.Index) error { return x.Assign(viewerClone, users["alice"]) }},
		{"assign bob to viewer-clone", func(x *incremental.Index) error { return x.Assign(viewerClone, users["bob"]) }},
		// A migration drifts it apart again...
		{"assign carol to viewer-clone", func(x *incremental.Index) error { return x.Assign(viewerClone, users["carol"]) }},
		// ...and a revocation re-aligns it.
		{"revoke carol from viewer-clone", func(x *incremental.Index) error { return x.Revoke(viewerClone, users["carol"]) }},
		// A v2 role duplicates it a second time.
		{"create role viewer-v2", func(x *incremental.Index) error { return x.AddRole(viewerV2) }},
		{"assign alice to viewer-v2", func(x *incremental.Index) error { return x.Assign(viewerV2, users["alice"]) }},
		{"assign bob to viewer-v2", func(x *incremental.Index) error { return x.Assign(viewerV2, users["bob"]) }},
		// Cleanup removes the first clone.
		{"remove role viewer-clone", func(x *incremental.Index) error { return x.RemoveRole(viewerClone) }},
	}

	names := map[int]string{
		viewer: "viewer", viewerClone: "viewer-clone",
		editor: "editor", viewerV2: "viewer-v2",
	}
	for _, ev := range events {
		if err := ev.do(x); err != nil {
			return fmt.Errorf("%s: %w", ev.desc, err)
		}
		groups := x.Groups(incremental.GroupOptions{IgnoreEmpty: true})
		fmt.Printf("%-32s -> ", ev.desc)
		if len(groups) == 0 {
			fmt.Println("no duplicate roles")
			continue
		}
		for _, g := range groups {
			fmt.Print("[")
			for i, r := range g {
				if i > 0 {
					fmt.Print(" ")
				}
				fmt.Print(names[r])
			}
			fmt.Print("] ")
		}
		fmt.Println()
	}

	// Point queries work too.
	same, err := x.SameAs(viewer)
	if err != nil {
		return err
	}
	fmt.Printf("\nroles currently identical to viewer: %d\n", len(same))
	return nil
}
