// Driftaudit simulates the lifecycle the paper describes: a clean RBAC
// deployment accumulates inefficiencies through organic, unsupervised
// churn, periodic audits watch the counters climb, and a cleanup run
// brings them back down.
//
// Pipeline: generate a small clean-ish org -> synthesise a drift event
// stream (joiners, movers, leavers, cloned roles) -> replay it with
// audit checkpoints -> diff the first and last audits -> consolidate
// and show the recovery.
//
// Run with:
//
//	go run ./examples/driftaudit -events 2000
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/gen"
	"repro/internal/rbac"
	"repro/internal/replay"
)

func main() {
	events := flag.Int("events", 2000, "number of drift events to simulate")
	flag.Parse()
	if err := run(*events); err != nil {
		log.Fatal(err)
	}
}

func run(eventCount int) error {
	// A miniature organisation as the starting point.
	base, _, err := gen.Org(gen.DefaultOrgParams().Scaled(200))
	if err != nil {
		return err
	}
	fmt.Printf("base org: %+v\n", base.Stats())

	stream, err := gen.Drift(base, gen.DriftParams{
		Events:          eventCount,
		Seed:            42,
		CloneRoleChance: 40, // departments love recreating roles
	})
	if err != nil {
		return err
	}
	fmt.Printf("drift stream: %d events\n\n", len(stream))

	audit := func(d *rbac.Dataset) (*core.Report, error) {
		return core.Analyze(d, core.Options{SimilarThreshold: 1})
	}

	working := base.Clone()
	first, err := audit(working)
	if err != nil {
		return err
	}

	checkpointEvery := eventCount / 4
	if checkpointEvery == 0 {
		checkpointEvery = 1
	}
	r := &replay.Replayer{
		Dataset:         working,
		CheckpointEvery: checkpointEvery,
		Checkpoint: func(applied int, d *rbac.Dataset) bool {
			rep, err := audit(d)
			if err != nil {
				return false
			}
			same := core.StatsOf(rep.SameUserGroups)
			fmt.Printf("after %5d events: %5d roles, %3d same-user groups (%d roles), %3d standalone users\n",
				applied, rep.Stats.Roles, same.Groups, same.RolesInGroups,
				len(rep.StandaloneUsers))
			return true
		},
	}
	if _, err := r.Run(stream); err != nil {
		return err
	}

	last, err := audit(working)
	if err != nil {
		return err
	}

	fmt.Println("\ndrift summary (first audit vs last):")
	fmt.Print(diff.Reports(first, last).Summary())

	// Cleanup: consolidate the class-4 groups that drift created.
	cleaned, plan, err := consolidate.Consolidate(working, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\ncleanup: %d merges remove %d roles; safety verified\n",
		len(plan.Merges), plan.RolesRemoved())
	cleanedRep, err := audit(cleaned)
	if err != nil {
		return err
	}
	fmt.Println("\ncleanup summary (last audit vs after cleanup):")
	fmt.Print(diff.Reports(last, cleanedRep).Summary())
	return nil
}
