// Orgaudit reproduces the paper's §IV-B experiment end to end: generate
// the organisation-scale dataset (~90k users, ~350k permissions, ~50k
// roles with every inefficiency class planted at the paper's reported
// counts), audit it with the sparse Role Diet pipeline, and print the
// planted-vs-detected table.
//
// Run the full scale (a couple of seconds, a few hundred MB):
//
//	go run ./examples/orgaudit
//
// Or a miniature:
//
//	go run ./examples/orgaudit -scale 100
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	scale := flag.Int("scale", 1, "divide the paper-scale counts by this factor")
	flag.Parse()
	if err := run(*scale); err != nil {
		log.Fatal(err)
	}
}

func run(scale int) error {
	res, err := bench.RunOrg(scale)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	if !res.Matches() {
		return fmt.Errorf("detected counts diverge from planted ground truth")
	}
	fmt.Println("\nall detected counts match the planted ground truth exactly")
	fmt.Println("(the paper reports its method took ~2 minutes at this scale; the DBSCAN")
	fmt.Println("and HNSW baselines were halted after 24 hours)")
	return nil
}
