package repro

// Repository-level integration tests: the shipped sample data must stay
// loadable and must reproduce the paper's Figure 1 findings end to end.

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/rbac"
)

func TestShippedFigure1Dataset(t *testing.T) {
	f, err := os.Open("testdata/figure1.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := rbac.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-for-byte semantic parity with the programmatic fixture.
	want := rbac.Figure1()
	if ds.Stats() != want.Stats() {
		t.Fatalf("shipped dataset stats %+v, want %+v", ds.Stats(), want.Stats())
	}
	if !ds.RUAM().Equal(want.RUAM()) || !ds.RPAM().Equal(want.RPAM()) {
		t.Fatal("shipped dataset matrices differ from rbac.Figure1()")
	}

	rep, err := core.Analyze(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SameUserGroups) != 1 || len(rep.SamePermissionGroups) != 1 {
		t.Fatalf("shipped dataset audit: %+v / %+v",
			rep.SameUserGroups, rep.SamePermissionGroups)
	}
}
